(* Length-prefixed text wire format for the allocation service.

   A frame is a 4-byte big-endian payload length followed by that many
   bytes of UTF-8 text.  The text is line-oriented: the first line is a
   [request]/[reply] header (whitespace-separated tokens, trailing
   [key=value] parameters), everything after the first newline is the
   raw body — a PBQP instance, a MiniC source, an ATE program, an
   allocated program, or a stats table — handed to the existing parsers
   untouched.  The IO domain therefore does O(1) work per frame (length
   check + header split); bodies are parsed on the worker that executes
   the request.

   Robustness contract (test_wire locks it down): a frame whose declared
   length exceeds [max_frame] is rejected before any allocation; a
   malformed header or body yields an [Error _] result, never an
   exception escaping to the connection loop; a truncated frame is
   detected as EOF-mid-frame by the reader. *)

(* The framing itself lives in the shared [Frame] library (the
   distributed trainer speaks the same length-prefixed frames); this
   module re-exports it under the historical Wire names so the daemon,
   client and tests are unaffected by the extraction. *)

let max_frame = Frame.max_frame
let header_bytes = Frame.header_bytes

(* --- frame codec (see Frame) --- *)

let encode_frame = Frame.encode
let decode_len = Frame.decode_len

(* Blocking write of a whole frame (client side; the daemon's IO domain
   uses its own buffered nonblocking writes). *)
let write_frame = Frame.write

exception Frame_error = Frame.Frame_error

let read_frame = Frame.read

(* --- requests --- *)

type solve_params = {
  solver : string;
  k : int;
  backtrack : bool;
  model : string;
  deadline_ms : int;
}

let default_params =
  { solver = "scholz"; k = 50; backtrack = false; model = "modelA";
    deadline_ms = -1 }

type request =
  | Pbqp of solve_params * string
  | Minic of solve_params * string
  | Ate of solve_params * string
  | Stats
  | Ping
  | Reload of string

type envelope = { id : int; req : request }

let split_header s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let header_tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(* [key=value ...] parameter tokens; unknown keys are errors (a typo'd
   parameter silently falling back to a default would be a debugging
   trap on a network boundary). *)
let parse_params tokens =
  let rec go id p = function
    | [] -> Ok (id, p)
    | tok :: rest -> (
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "malformed parameter %S" tok)
        | Some i -> (
            let key = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            let int_v () =
              match int_of_string_opt v with
              | Some n -> Ok n
              | None -> Error (Printf.sprintf "parameter %s=%S: not an int" key v)
            in
            match key with
            | "id" -> (
                match int_v () with
                | Ok n -> go n p rest
                | Error e -> Error e)
            | "solver" -> go id { p with solver = v } rest
            | "k" -> (
                match int_v () with
                | Ok n -> go id { p with k = n } rest
                | Error e -> Error e)
            | "backtrack" -> (
                match bool_of_string_opt v with
                | Some b -> go id { p with backtrack = b } rest
                | None ->
                    Error
                      (Printf.sprintf "parameter backtrack=%S: not a bool" v))
            | "model" -> go id { p with model = v } rest
            | "deadline_ms" -> (
                match int_v () with
                | Ok n -> go id { p with deadline_ms = n } rest
                | Error e -> Error e)
            | _ -> Error (Printf.sprintf "unknown parameter %S" key)))
  in
  go 0 default_params tokens

let request_of_string s =
  let line, body = split_header s in
  match header_tokens line with
  | "request" :: kind :: params -> (
      match parse_params params with
      | Error e -> Error e
      | Ok (id, p) -> (
          match kind with
          | "pbqp" -> Ok { id; req = Pbqp (p, body) }
          | "minic" -> Ok { id; req = Minic (p, body) }
          | "ate" -> Ok { id; req = Ate (p, body) }
          | "stats" -> Ok { id; req = Stats }
          | "ping" -> Ok { id; req = Ping }
          | "reload" -> Ok { id; req = Reload (String.trim body) }
          | _ -> Error (Printf.sprintf "unknown request kind %S" kind)))
  | _ -> Error "not a request frame (expected \"request <kind> ...\")"

let params_to_string p =
  Printf.sprintf "solver=%s k=%d backtrack=%b model=%s deadline_ms=%d"
    p.solver p.k p.backtrack p.model p.deadline_ms

let request_to_string { id; req } =
  let idp = if id = 0 then "" else Printf.sprintf " id=%d" id in
  match req with
  | Pbqp (p, body) ->
      Printf.sprintf "request pbqp%s %s\n%s" idp (params_to_string p) body
  | Minic (p, body) ->
      Printf.sprintf "request minic%s %s\n%s" idp (params_to_string p) body
  | Ate (p, body) ->
      Printf.sprintf "request ate%s %s\n%s" idp (params_to_string p) body
  | Stats -> Printf.sprintf "request stats%s" idp
  | Ping -> Printf.sprintf "request ping%s" idp
  | Reload path -> Printf.sprintf "request reload%s\n%s" idp path

(* --- replies --- *)

type reply =
  | Solution of { cost : string; nodes : int; backtracks : int;
                  assignment : string }
  | No_solution of { nodes : int; backtracks : int }
  | Compiled of { cycles : int; spills : int; cost : string;
                  output : string }
  | Program of string
  | Stats_reply of (string * string) list
  | Pong
  | Reloaded of { version : int }
  | Error_reply of string
  | Timeout
  | Overloaded

let reply_to_string ~id reply =
  let idp = if id = 0 then "" else Printf.sprintf " id=%d" id in
  match reply with
  | Solution { cost; nodes; backtracks; assignment } ->
      Printf.sprintf "reply solution%s cost=%s nodes=%d backtracks=%d\n%s"
        idp cost nodes backtracks assignment
  | No_solution { nodes; backtracks } ->
      Printf.sprintf "reply nosolution%s nodes=%d backtracks=%d" idp nodes
        backtracks
  | Compiled { cycles; spills; cost; output } ->
      Printf.sprintf "reply compiled%s cycles=%d spills=%d cost=%s\n%s" idp
        cycles spills cost output
  | Program text -> Printf.sprintf "reply program%s\n%s" idp text
  | Stats_reply kvs ->
      Printf.sprintf "reply stats%s\n%s" idp
        (String.concat ""
           (List.map (fun (k, v) -> Printf.sprintf "%s %s\n" k v) kvs))
  | Pong -> Printf.sprintf "reply pong%s" idp
  | Reloaded { version } -> Printf.sprintf "reply reloaded%s version=%d" idp version
  | Error_reply msg -> Printf.sprintf "reply error%s\n%s" idp msg
  | Timeout -> Printf.sprintf "reply timeout%s" idp
  | Overloaded -> Printf.sprintf "reply overloaded%s" idp

(* Parameter lookup for reply headers: replies are machine-generated, so
   a missing key is a protocol error, not a default. *)
let reply_param tokens key ~of_string =
  let prefix = key ^ "=" in
  let plen = String.length prefix in
  let rec find = function
    | [] -> Error (Printf.sprintf "reply missing parameter %S" key)
    | t :: rest ->
        if String.length t >= plen && String.sub t 0 plen = prefix then
          match of_string (String.sub t plen (String.length t - plen)) with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "reply parameter %S malformed" t)
        else find rest
  in
  find tokens

let reply_int tokens key = reply_param tokens key ~of_string:int_of_string_opt
let reply_str tokens key =
  reply_param tokens key ~of_string:(fun s -> Some s)

let reply_id tokens =
  match reply_int tokens "id" with Ok n -> n | Error _ -> 0

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let reply_of_string s =
  let line, body = split_header s in
  match header_tokens line with
  | "reply" :: kind :: params -> (
      let id = reply_id params in
      let ok r = Ok (id, r) in
      match kind with
      | "solution" ->
          let* cost = reply_str params "cost" in
          let* nodes = reply_int params "nodes" in
          let* backtracks = reply_int params "backtracks" in
          ok (Solution { cost; nodes; backtracks; assignment = String.trim body })
      | "nosolution" ->
          let* nodes = reply_int params "nodes" in
          let* backtracks = reply_int params "backtracks" in
          ok (No_solution { nodes; backtracks })
      | "compiled" ->
          let* cycles = reply_int params "cycles" in
          let* spills = reply_int params "spills" in
          let* cost = reply_str params "cost" in
          ok (Compiled { cycles; spills; cost; output = body })
      | "program" -> ok (Program body)
      | "stats" ->
          let kvs =
            String.split_on_char '\n' body
            |> List.filter_map (fun l ->
                   match header_tokens l with
                   | [ k; v ] -> Some (k, v)
                   | _ -> None)
          in
          ok (Stats_reply kvs)
      | "pong" -> ok Pong
      | "reloaded" ->
          let* version = reply_int params "version" in
          ok (Reloaded { version })
      | "error" -> ok (Error_reply (String.trim body))
      | "timeout" -> ok Timeout
      | "overloaded" -> ok Overloaded
      | _ -> Error (Printf.sprintf "unknown reply kind %S" kind))
  | _ -> Error "not a reply frame (expected \"reply <kind> ...\")"
