(** Blocking client for the daemon: persistent connection, synchronous
    request/reply (pipelining is possible via {!send}/{!receive} with
    [id] correlation tags). *)

type t

val connect_unix : string -> t
(** Connect to the daemon's Unix-domain socket.
    @raise Unix.Unix_error if the daemon is not listening. *)

val connect_tcp : host:string -> port:int -> t

val close : t -> unit

val send : t -> Wire.envelope -> unit
(** Write one request frame without waiting for the reply. *)

val send_raw : t -> string -> unit
(** Write an arbitrary payload as a frame — the malformed-input tests'
    entry point. *)

val receive : t -> (int * Wire.reply, string) result
(** Read and parse one reply frame ([id], reply); [Error] on EOF or a
    malformed reply. *)

val request : t -> Wire.request -> (Wire.reply, string) result
(** [send] + [receive] for the synchronous common case. *)
