(* Blocking convenience client for the daemon: one synchronous request
   per call over a persistent connection.  Used by the pbqp_serve CLI's
   client modes, the wire tests, and the daemon bench (which runs one
   client per load-generator domain). *)

type t = { fd : Unix.file_descr }

let connect_unix path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let connect_tcp ~host ~port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
  in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t envelope = Wire.write_frame t.fd (Wire.request_to_string envelope)

let send_raw t payload = Wire.write_frame t.fd payload

let receive t =
  match Wire.read_frame t.fd with
  | None -> Error "connection closed by daemon"
  | Some payload -> Wire.reply_of_string payload

let request t req =
  send t { Wire.id = 0; req };
  match receive t with
  | Ok (_, reply) -> Ok reply
  | Error _ as e -> e
