(* Warm-model registry for the serving daemon.

   One master net (the checkpoint most recently loaded) plus one
   long-lived replica per daemon worker.  Workers refresh their replica
   from the master *between* requests ([for_worker]); a [reload] swaps
   the master under the lock and bumps the generation, so in-flight
   requests keep solving on the replica they started with and nothing
   blocks on the (slow) checkpoint load beyond the swap itself.

   Cache safety is free: a loaded checkpoint carries a globally fresh
   [Pvnet.version] stamp, replicas inherit it via [sync]/[copy_into],
   version-stamped {!Nn.Evalcache} entries self-invalidate, and
   {!Nn.Infer} batches only coalesce tickets of equal version — so a
   reload can never poison a cache entry or mix weights inside one
   batch.  [generation] (registry-local) and [Pvnet.version] (weights
   identity) are deliberately distinct counters: syncing a replica does
   not bump the version, and directly mutating the master's weights
   without a reload would not bump the generation. *)

type slot = {
  mutable s_net : Nn.Pvnet.t option [@guarded_by "mutex"];
  mutable s_gen : int [@guarded_by "mutex"];
}

type t = {
  mutex : Mutex.t;
  mutable master : Nn.Pvnet.t [@guarded_by "mutex"];
  mutable generation : int [@guarded_by "mutex"];
  slots : slot array;  (* slot i belongs to worker i; refresh under lock *)
}

let create ~net ~workers =
  if workers <= 0 then invalid_arg "Registry.create: workers <= 0";
  {
    mutex = Mutex.create ();
    master = net;
    generation = 1;
    slots = Array.init workers (fun _ -> { s_net = None; s_gen = 0 });
  }

let workers t = Array.length t.slots

let version t =
  Mutex.lock t.mutex;
  let v = Nn.Pvnet.version t.master in
  Mutex.unlock t.mutex;
  v

let generation t =
  Mutex.lock t.mutex;
  let g = t.generation in
  Mutex.unlock t.mutex;
  g

let for_worker t ~worker =
  let slot = t.slots.(worker) in
  Mutex.lock t.mutex;
  let net =
    match slot.s_net with
    | Some net when slot.s_gen = t.generation -> net
    | Some net when Nn.Pvnet.config net = Nn.Pvnet.config t.master ->
        (* stale but same shape: refresh weights in place (no realloc) *)
        Nn.Pvnet.copy_into ~src:t.master ~dst:net;
        slot.s_gen <- t.generation;
        net
    | _ ->
        (* first use, or the reload changed the architecture *)
        let net = Nn.Pvnet.clone t.master in
        slot.s_net <- Some net;
        slot.s_gen <- t.generation;
        net
  in
  Mutex.unlock t.mutex;
  net

let reload t path =
  match Nn.Pvnet.load path with
  | exception (Invalid_argument msg | Sys_error msg | Failure msg) ->
      Error msg
  | net ->
      Mutex.lock t.mutex;
      t.master <- net;
      t.generation <- t.generation + 1;
      let v = Nn.Pvnet.version net in
      Mutex.unlock t.mutex;
      Ok v

let eval_count t =
  Mutex.lock t.mutex;
  let total =
    Array.fold_left
      (fun acc slot ->
        match slot.s_net with
        | Some net -> acc + Nn.Pvnet.eval_count net
        | None -> acc)
      0 t.slots
  in
  Mutex.unlock t.mutex;
  total
