(* The allocation-as-a-service daemon.

   Thread structure (the only domains in the process):

   - one IO domain, raw-spawned by [run]: a select loop over the
     listening sockets (Unix-domain, optionally TCP), every client
     connection, and a self-pipe.  It owns every file descriptor —
     accepts, per-connection incremental frame assembly, and all writes
     happen here, so no fd is ever touched from two domains and closing
     a connection can never race a worker's write.  Per frame it does
     O(1) work: length check, header split, admission.  [ping] and
     [stats] are answered inline (counter snapshots, no blocking);
     solve/reload requests go through the bounded queue.

   - [config.workers] worker loops on a persistent [Par.Pool] (the
     calling domain participates as one of them).  Each worker pops a
     request, refreshes its warm replica from the [Registry], parses the
     body with the existing parsers, solves with the existing solvers —
     routing rl leaf evaluations through the shared [Nn.Infer] ticket
     queue and the shared striped cache, so unrelated in-flight requests
     coalesce into one [predict_prepared] batch — and pushes the reply
     text back to the IO domain via the reply queue + self-pipe.

   Admission control: the request queue is bounded ([queue_cap]); a
   frame arriving while it is full is answered [overloaded]
   immediately.  Deadlines are absolute (arrival + [deadline_ms]) and
   checked at dequeue: an expired request is answered [timeout] without
   being executed ([deadline_ms = 0] therefore expires
   deterministically — the test hook).

   Drain: [stop] (called from a signal handler or a test) makes the IO
   domain close the listeners and close the request queue.  Workers
   finish the queued requests and exit; the IO domain keeps flushing
   until every reply is written (bounded by a grace period), then closes
   every connection and unlinks the socket.  [run] returns only after
   both sides are joined — a clean SIGTERM exit. *)

type config = {
  socket_path : string;
  tcp_port : int option;
  workers : int;
  queue_cap : int;
  max_batch : int;
  wait_us : int;
  cache_capacity : int;
  coalesce : bool;
}

let default_config =
  {
    socket_path = "/tmp/pbqp_serve.sock";
    tcp_port = None;
    workers = 2;
    queue_cap = 64;
    max_batch = 32;
    wait_us = 200;
    cache_capacity = 4096;
    coalesce = true;
  }

(* --- connection state: every field IO-domain-private --- *)

type conn = {
  c_fd : Unix.file_descr;
  c_rbuf : Buffer.t;  (* partial inbound bytes *)
  mutable c_expect : int;  (* payload length once the header is read; -1 = none *)
  c_out : Buffer.t;  (* pending outbound frames *)
  mutable c_woff : int;  (* flushed prefix of c_out *)
  mutable c_eof : bool;  (* peer closed / errored; close once c_out drains *)
  mutable c_drop : bool;  (* protocol poisoned: stop parsing, flush, close *)
}

(* --- bounded request queue (IO pushes, workers pop) --- *)

type item = {
  it_conn : conn;  (* opaque token to the worker; only IO reads its fields *)
  it_id : int;
  it_req : Wire.request;
  it_deadline : float;  (* absolute seconds; infinity = none *)
}

type rqueue = {
  q_mutex : Mutex.t;
  q_cond : Condition.t;
  q_items : item Queue.t [@guarded_by "q_mutex"];
  q_cap : int;
  mutable q_closed : bool [@guarded_by "q_mutex"];
}

let rq_create cap =
  {
    q_mutex = Mutex.create ();
    q_cond = Condition.create ();
    q_items = Queue.create ();
    q_cap = cap;
    q_closed = false;
  }

(* Admission: never blocks the IO domain; [false] = full or closed. *)
let rq_push rq item =
  Mutex.lock rq.q_mutex;
  let ok = (not rq.q_closed) && Queue.length rq.q_items < rq.q_cap in
  if ok then begin
    Queue.add item rq.q_items;
    Condition.signal rq.q_cond
  end;
  Mutex.unlock rq.q_mutex;
  ok

(* Blocks until an item arrives; [None] once the queue is closed AND
   drained — the drain guarantee of the shutdown path. *)
let rq_pop rq =
  Mutex.lock rq.q_mutex;
  while Queue.is_empty rq.q_items && not rq.q_closed do
    Condition.wait rq.q_cond rq.q_mutex
  done;
  let item = Queue.take_opt rq.q_items in
  Mutex.unlock rq.q_mutex;
  item

let rq_close rq =
  Mutex.lock rq.q_mutex;
  rq.q_closed <- true;
  Condition.broadcast rq.q_cond;
  Mutex.unlock rq.q_mutex

let rq_length rq =
  Mutex.lock rq.q_mutex;
  let n = Queue.length rq.q_items in
  Mutex.unlock rq.q_mutex;
  n

(* --- the daemon --- *)

type t = {
  cfg : config;
  registry : Registry.t;
  serve : Nn.Infer.t option;  (* None = the no-coalescing ablation *)
  cache : Nn.Cache.t option;
  rq : rqueue;
  m_mutex : Mutex.t;
  parse_memo : (string, Pbqp.Graph.t) Hashtbl.t option [@guarded_by "m_mutex"];
      (* content-addressed parse memo; None = the per-request ablation *)
  r_mutex : Mutex.t;
  replies : (conn * string) Queue.t [@guarded_by "r_mutex"];
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop_flag : bool Atomic.t;
  inflight : int Atomic.t;
  served : int Atomic.t;
  timeouts : int Atomic.t;
  overloads : int Atomic.t;
  proto_errors : int Atomic.t;
  listeners : Unix.file_descr list;
}

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  Unix.bind fd (ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.set_nonblock fd;
  Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let create ?(config = default_config) net =
  if config.workers <= 0 then invalid_arg "Daemon.create: workers <= 0";
  if config.queue_cap <= 0 then invalid_arg "Daemon.create: queue_cap <= 0";
  let unix_l = listen_unix config.socket_path in
  let listeners =
    match config.tcp_port with
    | None -> [ unix_l ]
    | Some port -> [ unix_l; listen_tcp port ]
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    cfg = config;
    registry = Registry.create ~net ~workers:config.workers;
    serve =
      (if config.coalesce then
         Some
           (Nn.Infer.create ~max_batch:config.max_batch
              ~wait_us:config.wait_us ~workers:config.workers ())
       else None);
    cache =
      (if config.coalesce && config.cache_capacity > 0 then
         Some
           (if config.workers > 1 then
              Nn.Cache.striped ~stripes:16 ~capacity:config.cache_capacity
            else Nn.Cache.local ~capacity:config.cache_capacity)
       else None);
    rq = rq_create config.queue_cap;
    m_mutex = Mutex.create ();
    parse_memo = (if config.coalesce then Some (Hashtbl.create 64) else None);
    r_mutex = Mutex.create ();
    replies = Queue.create ();
    wake_r;
    wake_w;
    stop_flag = Atomic.make false;
    inflight = Atomic.make 0;
    served = Atomic.make 0;
    timeouts = Atomic.make 0;
    overloads = Atomic.make 0;
    proto_errors = Atomic.make 0;
    listeners;
  }

let wake t =
  match Unix.write t.wake_w (Bytes.make 1 'x') 0 1 with
  | _ -> ()
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      () (* pipe full: the IO domain is already due to wake *)

let stop t =
  Atomic.set t.stop_flag true;
  wake t

let socket_path t = t.cfg.socket_path

(* Worker side of the reply path: hand the rendered frame to the IO
   domain (the only fd owner) and kick its select loop. *)
let send_reply t conn ~id reply =
  let text = Wire.reply_to_string ~id reply in
  Mutex.lock t.r_mutex;
  Queue.add (conn, text) t.replies;
  Mutex.unlock t.r_mutex;
  wake t

(* --- request execution (worker domains) --- *)

let findings_text findings =
  String.concat "\n"
    (List.map (fun f -> Format.asprintf "%a" Check.Diag.pp_finding f) findings)

let solution_reply g sol ~nodes ~backtracks =
  match sol with
  | Some s ->
      Wire.Solution
        {
          cost = Pbqp.Cost.to_string (Pbqp.Solution.cost g s);
          nodes;
          backtracks;
          assignment = String.trim (Pbqp.Io.solution_to_string s);
        }
  | None -> Wire.No_solution { nodes; backtracks }

(* Content-addressed instance identity.  The evaluation cache keys on
   Zobrist hashes seeded by Graph.uid — a per-parse instance id — so
   two requests that parse the same text privately can never share
   entries.  The shared tier therefore memoizes the canonical parse per
   body: identical bodies get the same uid, and the version-stamped
   cache carries across requests (a compile server re-allocating the
   same functions is the steady state).  Each request still solves a
   private uid-preserving [Graph.copy], so reduction-style solvers may
   mutate their graph freely without aliasing the canonical instance. *)
let memo_capacity = 128

let parse_graph t body =
  let probe =
    Mutex.protect t.m_mutex (fun () ->
        match t.parse_memo with
        | None -> `Disabled
        | Some memo -> (
            match Hashtbl.find_opt memo body with
            | Some g -> `Hit g
            | None -> `Miss))
  in
  match probe with
  | `Disabled -> Check.Invariants.parse_string body
  | `Hit g -> Ok (Pbqp.Graph.copy g)
  | `Miss -> (
      match Check.Invariants.parse_string body with
      | Error _ as e -> e
      | Ok g ->
          let canonical =
            Mutex.protect t.m_mutex (fun () ->
                (* a racing worker may have parsed the same body
                   first; its instance wins so both share a uid *)
                match t.parse_memo with
                | None -> g
                | Some memo -> (
                    match Hashtbl.find_opt memo body with
                    | Some g0 -> g0
                    | None ->
                        if Hashtbl.length memo >= memo_capacity then
                          Hashtbl.reset memo;
                        Hashtbl.add memo body g;
                        g))
          in
          Ok (Pbqp.Graph.copy canonical))

let exec_pbqp t ~net (p : Wire.solve_params) body =
  match parse_graph t body with
  | Error findings -> Wire.Error_reply (findings_text findings)
  | Ok g -> (
      match p.solver with
      | "scholz" ->
          let s, c, _ = Solvers.Scholz.solve_with_cost g in
          solution_reply g
            (if Pbqp.Cost.is_finite c then Some s else None)
            ~nodes:0 ~backtracks:0
      | "rl" ->
          let sol, stats =
            Core.Solver.solve_feasible ~net
              ~mcts:{ Mcts.default_config with k = p.k }
              ~backtracking:p.backtrack ?cache:t.cache ?serve:t.serve g
          in
          solution_reply g sol ~nodes:stats.Core.Solver.nodes
            ~backtracks:stats.backtracks
      | other -> Wire.Error_reply (Printf.sprintf "unknown pbqp solver %S" other))

let exec_minic ~net (p : Wire.solve_params) src =
  let kind =
    match p.solver with
    | "fast" -> Ok Cir.Driver.Fast
    | "basic" -> Ok Cir.Driver.Basic
    | "greedy" -> Ok Cir.Driver.Greedy
    | "pbqp" -> Ok Cir.Driver.Pbqp
    | "pbqp-rl" ->
        Ok (Cir.Driver.Pbqp_rl (net, { Mcts.default_config with k = p.k }))
    | other -> Error (Printf.sprintf "unknown minic allocator %S" other)
  in
  match kind with
  | Error e -> Wire.Error_reply e
  | Ok kind ->
      let ir = Cir.Lower.compile src in
      let r = Cir.Driver.run kind ir in
      Wire.Compiled
        {
          cycles = r.Cir.Driver.outcome.Cir.Msim.cycles;
          spills = r.Cir.Driver.spills;
          cost =
            (match r.Cir.Driver.pbqp_cost with
            | Some c -> Pbqp.Cost.to_string c
            | None -> "none");
          output = String.concat "\n" r.Cir.Driver.outcome.Cir.Msim.output;
        }

let exec_ate t ~net (p : Wire.solve_params) src =
  let prog = Ate.Parse.of_string src in
  let machine = Ate.Machine.model p.model in
  let solve =
    match p.solver with
    | "scholz" ->
        Ok
          (fun g ->
            let s, c, _ = Solvers.Scholz.solve_with_cost g in
            if Pbqp.Cost.is_finite c then Some s else None)
    | "rl" ->
        Ok
          (fun g ->
            fst
              (Core.Solver.solve_feasible ~net
                 ~mcts:{ Mcts.default_config with k = p.k }
                 ~backtracking:p.backtrack ?cache:t.cache ?serve:t.serve g))
    | other -> Error (Printf.sprintf "unknown ate solver %S" other)
  in
  match solve with
  | Error e -> Wire.Error_reply e
  | Ok solve -> (
      match Ate.Translate.allocate machine ~solve prog with
      | Ok q -> Wire.Program (Ate.Ast.to_string q)
      | Error e -> Wire.Error_reply ("allocation failed: " ^ e))

let execute t ~net req =
  try
    match req with
    | Wire.Pbqp (p, body) -> exec_pbqp t ~net p body
    | Wire.Minic (p, src) -> exec_minic ~net p src
    | Wire.Ate (p, src) -> exec_ate t ~net p src
    | Wire.Reload path -> (
        match Registry.reload t.registry path with
        | Ok version -> Wire.Reloaded { version }
        | Error e -> Wire.Error_reply ("reload failed: " ^ e))
    | Wire.Stats | Wire.Ping ->
        (* answered inline by the IO domain; defensive only *)
        Wire.Error_reply "stats/ping are not queued requests"
  with e ->
    (* no exception may kill the worker loop: a poisoned batch, a parser
       raise, a broken checkpoint all become error replies *)
    Wire.Error_reply (Printexc.to_string e)

let worker_loop t ~worker =
  let rec go () =
    match rq_pop t.rq with
    | None -> () (* queue closed and drained *)
    | Some item ->
        let reply =
          if Unix.gettimeofday () >= item.it_deadline then begin
            Atomic.incr t.timeouts;
            Wire.Timeout
          end
          else begin
            let net = Registry.for_worker t.registry ~worker in
            let r = execute t ~net item.it_req in
            Atomic.incr t.served;
            r
          end
        in
        send_reply t item.it_conn ~id:item.it_id reply;
        Atomic.decr t.inflight;
        go ()
  in
  go ()

(* --- stats (IO domain; counter snapshots only) --- *)

let stats_kvs t =
  let base =
    [
      ("version", string_of_int (Registry.version t.registry));
      ("generation", string_of_int (Registry.generation t.registry));
      ("workers", string_of_int t.cfg.workers);
      ("queue_cap", string_of_int t.cfg.queue_cap);
      ("queue_depth", string_of_int (rq_length t.rq));
      ("coalesce", string_of_bool t.cfg.coalesce);
      ("served", string_of_int (Atomic.get t.served));
      ("timeouts", string_of_int (Atomic.get t.timeouts));
      ("overloads", string_of_int (Atomic.get t.overloads));
      ("proto_errors", string_of_int (Atomic.get t.proto_errors));
      ("eval_count", string_of_int (Registry.eval_count t.registry));
      ( "memo_size",
        string_of_int
          (Mutex.protect t.m_mutex (fun () ->
               match t.parse_memo with
               | None -> 0
               | Some memo -> Hashtbl.length memo)) );
    ]
  in
  let cache =
    match t.cache with
    | None -> []
    | Some c ->
        let s = Nn.Cache.stats c in
        [
          ("cache_hits", string_of_int s.Nn.Evalcache.hits);
          ("cache_misses", string_of_int s.Nn.Evalcache.misses);
          ("cache_evictions", string_of_int s.Nn.Evalcache.evictions);
          ("cache_size", string_of_int s.Nn.Evalcache.size);
          ("cache_hit_rate", Printf.sprintf "%.4f" (Nn.Cache.hit_rate c));
        ]
  in
  let infer =
    match t.serve with
    | None -> []
    | Some srv ->
        let s = Nn.Infer.stats srv in
        [
          ("infer_batches", string_of_int s.Nn.Infer.batches);
          ("infer_rows", string_of_int s.Nn.Infer.rows);
          ("infer_full_flushes", string_of_int s.Nn.Infer.full_flushes);
          ("infer_timeout_flushes", string_of_int s.Nn.Infer.timeout_flushes);
          ("infer_max_batch_rows", string_of_int s.Nn.Infer.max_batch_rows);
          ( "infer_rows_per_batch",
            Printf.sprintf "%.3f"
              (if s.Nn.Infer.batches = 0 then 0.0
               else float_of_int s.Nn.Infer.rows /. float_of_int s.Nn.Infer.batches) );
          ("infer_waits", string_of_int s.Nn.Infer.waits);
          ("infer_wait_p50_us", Printf.sprintf "%.1f" s.Nn.Infer.wait_p50_us);
          ("infer_wait_p99_us", Printf.sprintf "%.1f" s.Nn.Infer.wait_p99_us);
        ]
  in
  base @ cache @ infer

(* --- the IO domain --- *)

let push_out conn text =
  Buffer.add_bytes conn.c_out (Wire.encode_frame text)

let deadline_of arrival deadline_ms =
  if deadline_ms < 0 then infinity
  else arrival +. (float_of_int deadline_ms /. 1000.)

(* One complete inbound frame (IO domain): admit, answer inline, or
   reject — never block, never raise. *)
let handle_frame t conn payload =
  match Wire.request_of_string payload with
  | Error msg ->
      Atomic.incr t.proto_errors;
      push_out conn (Wire.reply_to_string ~id:0 (Wire.Error_reply msg))
  | Ok { id; req = Wire.Ping } ->
      push_out conn (Wire.reply_to_string ~id Wire.Pong)
  | Ok { id; req = Wire.Stats } ->
      push_out conn (Wire.reply_to_string ~id (Wire.Stats_reply (stats_kvs t)))
  | Ok { id; req } ->
      let arrival = Unix.gettimeofday () in
      let deadline_ms =
        match req with
        | Wire.Pbqp (p, _) | Wire.Minic (p, _) | Wire.Ate (p, _) ->
            p.Wire.deadline_ms
        | _ -> -1
      in
      let item =
        { it_conn = conn; it_id = id; it_req = req;
          it_deadline = deadline_of arrival deadline_ms }
      in
      Atomic.incr t.inflight;
      if not (rq_push t.rq item) then begin
        Atomic.decr t.inflight;
        Atomic.incr t.overloads;
        push_out conn (Wire.reply_to_string ~id Wire.Overloaded)
      end

(* Assemble frames out of the connection's inbound buffer.  A corrupt
   length poisons the connection: error reply, stop parsing, close after
   the flush — the stream has no recoverable framing left. *)
let process_rbuf t conn =
  let continue_ = ref true in
  while !continue_ && not conn.c_drop do
    let have = Buffer.length conn.c_rbuf in
    if conn.c_expect < 0 then
      if have >= Wire.header_bytes then begin
        let hdr = Bytes.of_string (Buffer.sub conn.c_rbuf 0 Wire.header_bytes) in
        let len = Wire.decode_len hdr 0 in
        if len < 0 || len > Wire.max_frame then begin
          Atomic.incr t.proto_errors;
          push_out conn
            (Wire.reply_to_string ~id:0
               (Wire.Error_reply (Printf.sprintf "bad frame length %d" len)));
          conn.c_drop <- true
        end
        else conn.c_expect <- len
      end
      else continue_ := false
    else if have >= Wire.header_bytes + conn.c_expect then begin
      let all = Buffer.contents conn.c_rbuf in
      let payload = String.sub all Wire.header_bytes conn.c_expect in
      let rest_off = Wire.header_bytes + conn.c_expect in
      Buffer.clear conn.c_rbuf;
      Buffer.add_substring conn.c_rbuf all rest_off
        (String.length all - rest_off);
      conn.c_expect <- -1;
      handle_frame t conn payload
    end
    else continue_ := false
  done

let drain_wake t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  in
  go ()

let drain_replies t =
  Mutex.lock t.r_mutex;
  let batch = Queue.fold (fun acc r -> r :: acc) [] t.replies in
  Queue.clear t.replies;
  Mutex.unlock t.r_mutex;
  List.iter
    (fun (conn, text) -> if not conn.c_eof then push_out conn text)
    (List.rev batch)

let replies_empty t =
  Mutex.lock t.r_mutex;
  let e = Queue.is_empty t.replies in
  Mutex.unlock t.r_mutex;
  e

let flush_conn conn =
  let len = Buffer.length conn.c_out in
  if conn.c_woff < len then begin
    let chunk = Buffer.sub conn.c_out conn.c_woff (len - conn.c_woff) in
    match Unix.write_substring conn.c_fd chunk 0 (String.length chunk) with
    | n ->
        conn.c_woff <- conn.c_woff + n;
        if conn.c_woff = Buffer.length conn.c_out then begin
          Buffer.clear conn.c_out;
          conn.c_woff <- 0
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
        conn.c_eof <- true;
        Buffer.clear conn.c_out;
        conn.c_woff <- 0
  end

let read_conn t conn =
  let b = Bytes.create 65536 in
  match Unix.read conn.c_fd b 0 65536 with
  | 0 -> conn.c_eof <- true
  | n ->
      Buffer.add_subbytes conn.c_rbuf b 0 n;
      process_rbuf t conn
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
      conn.c_eof <- true

let io_loop t =
  let conns = ref [] in
  let draining = ref false in
  let drain_start = ref 0.0 in
  let finished = ref false in
  while not !finished do
    (* enter drain mode once: stop accepting, let workers run dry *)
    if Atomic.get t.stop_flag && not !draining then begin
      draining := true;
      drain_start := Unix.gettimeofday ();
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        t.listeners;
      rq_close t.rq
    end;
    drain_replies t;
    (* reap connections whose peer vanished or whose output is done *)
    conns :=
      List.filter
        (fun conn ->
          let flushed = Buffer.length conn.c_out = 0 in
          if conn.c_eof || (conn.c_drop && flushed) then begin
            conn.c_eof <- true (* late replies for this conn are dropped *);
            (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
            false
          end
          else true)
        !conns;
    let pending_out =
      List.exists (fun c -> Buffer.length c.c_out > 0) !conns
    in
    if
      !draining
      && ((rq_length t.rq = 0 && Atomic.get t.inflight = 0
           && (not pending_out) && replies_empty t)
         || Unix.gettimeofday () -. !drain_start > 10.0)
    then finished := true
    else begin
      let listen_fds = if !draining then [] else t.listeners in
      let read_fds =
        t.wake_r :: listen_fds @ List.map (fun c -> c.c_fd) !conns
      in
      let write_fds =
        List.filter_map
          (fun c -> if Buffer.length c.c_out > 0 then Some c.c_fd else None)
          !conns
      in
      match Unix.select read_fds write_fds [] 0.25 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | readable, writable, _ ->
          if List.mem t.wake_r readable then drain_wake t;
          drain_replies t;
          List.iter
            (fun lfd ->
              if List.mem lfd readable then
                match Unix.accept lfd with
                | fd, _ ->
                    Unix.set_nonblock fd;
                    conns :=
                      {
                        c_fd = fd;
                        c_rbuf = Buffer.create 256;
                        c_expect = -1;
                        c_out = Buffer.create 256;
                        c_woff = 0;
                        c_eof = false;
                        c_drop = false;
                      }
                      :: !conns
                | exception
                    Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
                    ())
            listen_fds;
          List.iter
            (fun conn ->
              if List.mem conn.c_fd readable then read_conn t conn;
              if (not conn.c_eof) && List.mem conn.c_fd writable then
                flush_conn conn;
              (* a reply pushed just above may be writable right away *)
              if (not conn.c_eof) && Buffer.length conn.c_out > 0 then
                flush_conn conn)
            !conns
    end
  done;
  List.iter
    (fun conn -> try Unix.close conn.c_fd with Unix.Unix_error _ -> ())
    !conns;
  if not !draining then
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.listeners;
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())

let run t =
  (* a client vanishing mid-write must be an EPIPE error, not a fatal
     signal — standard daemon hygiene *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let io = Domain.spawn (fun () -> io_loop t) in
  let nw = t.cfg.workers in
  (if nw <= 1 then worker_loop t ~worker:0
   else begin
     let pool = Par.Pool.create ~domains:nw in
     (* Rendezvous: a worker task spins until all [nw] tasks have
        started, so no pool domain can grab two loop tasks — exactly one
        long-lived loop per domain (Par.Pool assigns tasks dynamically;
        without the rendezvous a fast domain could steal a second loop
        and idle a worker for the daemon's whole lifetime). *)
     let started = Atomic.make 0 in
     Par.Pool.run pool
       (Array.init nw (fun i ->
            fun _pool_worker ->
             Atomic.incr started;
             while Atomic.get started < nw do
               Domain.cpu_relax ()
             done;
             worker_loop t ~worker:i));
     Par.Pool.shutdown pool
   end);
  Domain.join io;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ())

let install_signal_handlers t =
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ()
