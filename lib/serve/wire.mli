(** Length-prefixed text wire format for the allocation service.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of text.  The text's first line is a header —
    [request <kind> key=value ...] or [reply <kind> key=value ...] —
    and everything after the first newline is the raw body in an
    existing text format ({!Pbqp.Io} instances and [assign] solution
    lines, MiniC sources, ATE programs).  Frame assembly is O(1) on the
    daemon's IO domain; bodies are parsed by the worker that executes
    the request. *)

val max_frame : int
(** Hard payload cap (8 MiB): a declared length above it is rejected
    before any buffer is allocated. *)

val header_bytes : int

exception Frame_error of string
(** Truncated (EOF mid-frame) or length-corrupt input on a blocking
    reader. *)

val encode_frame : string -> bytes
(** Length header + payload, ready to write.
    @raise Invalid_argument above {!max_frame}. *)

val decode_len : bytes -> int -> int
(** Big-endian u32 at an offset; may be negative or oversized on
    garbage input — callers must range-check against {!max_frame}. *)

val write_frame : Unix.file_descr -> string -> unit
(** Blocking whole-frame write (client side). *)

val read_frame : Unix.file_descr -> string option
(** Blocking whole-frame read: [None] on clean EOF at a frame boundary.
    @raise Frame_error on EOF mid-frame or a corrupt length. *)

(** {1 Requests} *)

type solve_params = {
  solver : string;
      (** [pbqp]: scholz | rl; [minic]: fast | basic | greedy | pbqp |
          pbqp-rl; [ate]: scholz | rl *)
  k : int;  (** MCTS simulations per move (rl solvers) *)
  backtrack : bool;  (** rl backtracking (pbqp requests) *)
  model : string;  (** ATE machine model name (ate requests) *)
  deadline_ms : int;
      (** admission deadline relative to arrival; negative = none, [0]
          expires deterministically at dequeue (the timeout-path test
          hook) *)
}

val default_params : solve_params
(** scholz, k=50, no backtracking, modelA, no deadline — matching the
    [pbqp_solve]/[atec] CLI defaults so daemon and batch runs of the
    same input agree bitwise. *)

type request =
  | Pbqp of solve_params * string  (** body: a {!Pbqp.Io} instance *)
  | Minic of solve_params * string  (** body: MiniC source *)
  | Ate of solve_params * string  (** body: an ATE test-pattern program *)
  | Stats
  | Ping
  | Reload of string  (** body: checkpoint path for the model registry *)

type envelope = { id : int; req : request }
(** [id] is an opaque client correlation tag echoed in the reply header
    ([0] = untagged), for clients that pipeline. *)

val request_to_string : envelope -> string
val request_of_string : string -> (envelope, string) result

(** {1 Replies} *)

type reply =
  | Solution of { cost : string; nodes : int; backtracks : int;
                  assignment : string }
      (** [assignment] is the one-line [assign ...] form of
          {!Pbqp.Io.solution_to_string} *)
  | No_solution of { nodes : int; backtracks : int }
  | Compiled of { cycles : int; spills : int; cost : string;
                  output : string }
  | Program of string  (** the allocated ATE program text *)
  | Stats_reply of (string * string) list
  | Pong
  | Reloaded of { version : int }
  | Error_reply of string
  | Timeout  (** the request's deadline expired before execution *)
  | Overloaded  (** rejected at admission: the bounded queue was full *)

val reply_to_string : id:int -> reply -> string
val reply_of_string : string -> (int * reply, string) result
