(** Warm-model registry: one master net plus a long-lived replica per
    daemon worker, refreshed between requests.

    {!reload} swaps the master and bumps the registry generation; it
    never blocks in-flight requests (they finish on the replica they
    started with) and can never poison caches or coalesced batches — a
    loaded checkpoint carries a globally fresh {!Nn.Pvnet.version}, so
    version-stamped {!Nn.Evalcache} entries self-invalidate and
    {!Nn.Infer} never mixes the old and new weights in one batch. *)

type t

val create : net:Nn.Pvnet.t -> workers:int -> t
(** @raise Invalid_argument on non-positive [workers]. *)

val workers : t -> int

val version : t -> int
(** The master's current weights version (what replicas converge to). *)

val generation : t -> int
(** Bumped by every successful {!reload}; starts at 1. *)

val for_worker : t -> worker:int -> Nn.Pvnet.t
(** The worker's replica, refreshed from the master if a reload happened
    since the last call.  Call between requests, never mid-solve; the
    returned net is the caller's exclusively until its next
    [for_worker]. *)

val reload : t -> string -> (int, string) result
(** Load a checkpoint and make it the master; returns its weights
    version.  [Error] (with the load's message) leaves the registry
    unchanged. *)

val eval_count : t -> int
(** Total leaf evaluations served across all worker replicas. *)
