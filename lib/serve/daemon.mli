(** The allocation-as-a-service daemon.

    A long-lived process serving PBQP, MiniC, and ATE allocation
    requests over a Unix-domain socket (optionally also loopback TCP)
    in the {!Wire} format.  One IO domain owns every file descriptor
    (accept, frame assembly, all writes); [workers] worker loops run on
    a persistent {!Par.Pool} and execute requests with the existing
    parsers and solvers, routing rl leaf evaluations through a shared
    {!Nn.Infer} ticket queue and striped {!Nn.Cache} so unrelated
    in-flight requests coalesce into shared forward batches —
    result-preserving (a daemon solve is bitwise the CLI solve).
    Identical PBQP bodies resolve to one canonical parse (a
    content-addressed memo), so repeated requests share a [Graph.uid]
    and the version-stamped evaluation cache carries across them.

    Admission control: a bounded request queue; a frame arriving while
    it is full gets an immediate [overloaded] reply.  Deadlines
    (arrival + [deadline_ms]) are checked at dequeue; expired requests
    get [timeout] without being executed.  [stats]/[ping] are answered
    inline by the IO domain.  [reload] swaps the {!Registry} master
    without blocking in-flight requests.

    {!stop} (or SIGTERM/SIGINT via {!install_signal_handlers}) drains
    gracefully: stop accepting, finish every queued request, flush
    every reply, close, unlink the socket. *)

type config = {
  socket_path : string;
  tcp_port : int option;  (** also listen on loopback TCP *)
  workers : int;  (** solver domains (the {!Par.Pool} size) *)
  queue_cap : int;  (** admission bound; beyond it: [overloaded] *)
  max_batch : int;  (** {!Nn.Infer} coalesced-batch row budget *)
  wait_us : int;  (** {!Nn.Infer} partial-batch age bound *)
  cache_capacity : int;  (** shared eval cache entries; [0] disables *)
  coalesce : bool;
      (** [false] is the per-request ablation: no shared {!Nn.Infer}, no
          shared cache — the process-per-request baseline the bench gate
          compares against *)
}

val default_config : config
(** [/tmp/pbqp_serve.sock], no TCP, 2 workers, queue 64, batch 32,
    wait 200 µs, cache 4096, coalescing on. *)

type t

val create : ?config:config -> Nn.Pvnet.t -> t
(** Bind the sockets and build the shared state (registry, inference
    service, cache, queues).  The net seeds the model registry.
    @raise Invalid_argument on non-positive [workers]/[queue_cap];
    [Unix.Unix_error] if binding fails. *)

val run : t -> unit
(** Serve until {!stop}: spawns the IO domain, runs the worker loops on
    the calling domain's pool (the caller participates as a worker),
    and returns only after the graceful drain completes — queued
    requests finished, replies flushed, sockets closed and unlinked.
    Call at most once. *)

val stop : t -> unit
(** Begin the graceful drain; safe from any domain and from signal
    handlers.  Idempotent. *)

val socket_path : t -> string

val install_signal_handlers : t -> unit
(** SIGTERM and SIGINT → {!stop} (the clean shutdown path the smoke
    test exercises). *)
