(** Length-prefixed binary framing shared by the allocation service
    ([Serve.Wire]) and the distributed trainer ([Dist]).

    A frame is a 4-byte big-endian payload length followed by that many
    payload bytes; the payload is opaque at this layer. *)

val max_frame : int
(** Hard payload cap (8 MiB): declared lengths beyond it are rejected
    before any allocation. *)

val header_bytes : int

exception Frame_error of string
(** Framing violations: oversized/negative declared length, EOF in the
    middle of a frame. *)

val encode : string -> Bytes.t
(** The on-wire bytes of one frame.
    @raise Invalid_argument if the payload exceeds {!max_frame}. *)

val decode_len : Bytes.t -> int -> int
(** Read a frame header's declared payload length at the given offset
    (no validation — pair with {!check_len}). *)

val check_len : int -> unit
(** @raise Frame_error if the length is negative or exceeds {!max_frame}. *)

val write : Unix.file_descr -> string -> unit
(** Blocking write of a whole frame. *)

val read : Unix.file_descr -> string option
(** Blocking read of one frame: [None] on clean EOF at a frame boundary.
    @raise Frame_error on EOF mid-frame or a bad declared length. *)
