(* Length-prefixed binary framing shared by the allocation service
   (Serve.Wire) and the distributed trainer (Dist): a frame is a 4-byte
   big-endian payload length followed by that many payload bytes.  The
   payload is opaque at this layer — Serve.Wire puts line-oriented text
   in it, Dist mixes a text header line with binary snapshot bodies.

   Robustness contract (test_wire locks it down for the service,
   test_dist for the trainer): a frame whose declared length exceeds
   [max_frame] is rejected before any allocation; a truncated frame is
   detected as EOF-mid-frame by the reader; a clean EOF at a frame
   boundary reads as [None]. *)

let max_frame = 8 * 1024 * 1024
let header_bytes = 4

exception Frame_error of string

let encode payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_bytes + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b header_bytes n;
  b

let decode_len b off = Int32.to_int (Bytes.get_int32_be b off)

let check_len n =
  if n < 0 || n > max_frame then
    raise (Frame_error (Printf.sprintf "bad frame length %d" n))

(* Blocking write of a whole frame. *)
let write fd payload =
  let b = encode payload in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd b !off (len - !off) in
    if n = 0 then failwith "Frame.write: connection closed";
    off := !off + n
  done

(* Blocking read of exactly [n] bytes; [None] on clean EOF at a frame
   boundary, [Frame_error] on EOF mid-frame. *)
let read_exact fd n ~mid_frame =
  let b = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    let r = Unix.read fd b !off (n - !off) in
    if r = 0 then eof := true else off := !off + r
  done;
  if !eof then
    if !off = 0 && not mid_frame then None
    else raise (Frame_error "truncated frame: EOF mid-frame")
  else Some b

let read fd =
  match read_exact fd header_bytes ~mid_frame:false with
  | None -> None
  | Some hdr -> (
      let n = decode_len hdr 0 in
      check_len n;
      if n = 0 then Some ""
      else
        match read_exact fd n ~mid_frame:true with
        | None -> None (* unreachable: mid_frame raises *)
        | Some b -> Some (Bytes.to_string b))
