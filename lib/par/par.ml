(* Persistent work-sharing domain pool.  See par.mli for the contract.

   Layout: one mutex guards a FIFO of thunks plus a [pending] count of
   tasks submitted-but-not-finished for the current region.  Worker
   domains loop on [work]: pop a task, run it outside the lock, signal
   [done_] when [pending] drops to zero.  The submitting domain enqueues
   the whole region, broadcasts, then drains the queue itself before
   blocking on [done_] — so the caller is a full worker and a pool of
   size 1 never takes the lock at all.

   Nested regions (a task calling back into the pool, e.g. pool-backed
   matmul inside a self-play episode) would deadlock on [done_] because
   the blocked task occupies the worker needed to finish the inner
   region.  A domain-local [in_region] flag detects this and runs inner
   regions inline, serially, on the current worker; [worker_ix] records
   which worker we are so nested tasks still index per-worker state
   correctly. *)

type task = { fn : int -> unit; ix : int }
(* [ix] is unused by the pool itself; kept for debuggability. *)

type pool = {
  mutex : Mutex.t;
  work : Condition.t;        (* signalled when tasks are enqueued / stop set *)
  done_ : Condition.t;       (* signalled when [pending] reaches 0 *)
  queue : task Queue.t;
  mutable pending : int [@guarded_by "mutex"];
      (* tasks of the current region not yet finished *)
  mutable stop : bool [@guarded_by "mutex"];
  mutable exn : (exn * Printexc.raw_backtrace) option [@guarded_by "mutex"];
      (* first task failure *)
  mutable alive : bool;
  mutable workers : unit Domain.t array; (* the [size - 1] spawned domains *)
  size : int;
}

let in_region : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let worker_ix : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let run_task t (tk : task) ~worker =
  ignore tk.ix;
  (try tk.fn worker
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock t.mutex;
     if t.exn = None then t.exn <- Some (e, bt);
     Mutex.unlock t.mutex);
  Mutex.lock t.mutex;
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.done_;
  Mutex.unlock t.mutex

let worker_loop t ~worker =
  Domain.DLS.set worker_ix worker;
  Domain.DLS.set in_region true;
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.work t.mutex
    done;
    if Queue.is_empty t.queue && t.stop then Mutex.unlock t.mutex
    else begin
      let tk = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      run_task t tk ~worker;
      loop ()
    end
  in
  loop ()

module Pool = struct
  type t = pool

  let create ~domains =
    let size = max 1 domains in
    let t =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        done_ = Condition.create ();
        queue = Queue.create ();
        pending = 0;
        stop = false;
        exn = None;
        alive = true;
        workers = [||];
        size;
      }
    in
    t.workers <-
      Array.init (size - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t ~worker:(i + 1)));
    t

  let size t = t.size

  let check_alive t =
    if not t.alive then invalid_arg "Par.Pool: pool already shut down"

  let run_inline tasks =
    let worker = Domain.DLS.get worker_ix in
    Array.iter (fun fn -> fn worker) tasks

  let run t tasks =
    check_alive t;
    let n = Array.length tasks in
    if n = 0 then ()
    else if t.size = 1 || Domain.DLS.get in_region then run_inline tasks
    else begin
      Mutex.lock t.mutex;
      t.exn <- None;
      t.pending <- n;
      Array.iteri (fun ix fn -> Queue.push { fn; ix } t.queue) tasks;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* The caller drains the queue as worker 0. *)
      Domain.DLS.set in_region true;
      let rec help () =
        Mutex.lock t.mutex;
        if Queue.is_empty t.queue then Mutex.unlock t.mutex
        else begin
          let tk = Queue.pop t.queue in
          Mutex.unlock t.mutex;
          run_task t tk ~worker:0;
          help ()
        end
      in
      help ();
      Domain.DLS.set in_region false;
      Mutex.lock t.mutex;
      while t.pending > 0 do
        Condition.wait t.done_ t.mutex
      done;
      let exn = t.exn in
      t.exn <- None;
      Mutex.unlock t.mutex;
      match exn with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

  let parallel_for t ~n ?chunk f =
    if n <= 0 then ()
    else begin
      let chunk =
        match chunk with
        | Some c -> max 1 c
        | None -> max 1 ((n + t.size - 1) / t.size)
      in
      let ntasks = (n + chunk - 1) / chunk in
      let tasks =
        Array.init ntasks (fun b ->
            let lo = b * chunk in
            let hi = min n (lo + chunk) in
            fun worker ->
              for i = lo to hi - 1 do
                f ~worker i
              done)
      in
      run t tasks
    end

  let map t ~f xs =
    let n = Array.length xs in
    if n = 0 then [||]
    else begin
      let out = Array.make n None in
      let tasks =
        Array.init n (fun i ->
            fun worker -> out.(i) <- Some (f ~worker xs.(i)))
      in
      run t tasks;
      Array.map
        (function
          | Some v -> v
          | None -> assert false (* run is a barrier; every slot is filled *))
        out
    end

  let parallel_rows t ~rows f =
    if rows > 0 then begin
      let nb = min rows t.size in
      let per = (rows + nb - 1) / nb in
      parallel_for t ~n:nb ~chunk:1 (fun ~worker:_ blk ->
          let lo = blk * per in
          let hi = min rows (lo + per) in
          if lo < hi then f ~lo ~hi)
    end

  let reduce t ~n ~map:mapf ~fold ~init =
    if n <= 0 then init
    else begin
      let out = Array.make n None in
      let tasks =
        Array.init n (fun i ->
            fun worker -> out.(i) <- Some (mapf ~worker i))
      in
      run t tasks;
      (* Ascending-index fold on the calling domain: the combination
         order is fixed by construction, independent of scheduling. *)
      Array.fold_left
        (fun acc v ->
          match v with Some v -> fold acc v | None -> assert false)
        init out
    end

  let shutdown t =
    if t.alive then begin
      t.alive <- false;
      Mutex.lock t.mutex;
      t.stop <- true;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      Array.iter Domain.join t.workers
    end
end

let recommended_domains ?(cap = 8) () =
  max 1 (min cap (Domain.recommended_domain_count ()))
