(** A persistent work-sharing domain pool (OCaml 5 parallelism).

    One pool is spawned per run ({!Pool.create}) and reused for every
    parallel region — GEMM row blocks, data-parallel gradient shards,
    self-play episodes, arena games — instead of paying a [Domain.spawn]
    (and net re-clone) per iteration.  Worker domains block on a
    mutex/condvar-guarded task queue; the submitting domain participates
    in draining the queue, so a pool of size [d] applies [d] domains to
    every region (including the caller's).

    {b Determinism contract.}  Scheduling (which worker runs which task,
    and in what real-time order) is nondeterministic; results are not.
    Every combinator keys results by {e task index}, never by completion
    order: {!Pool.map} writes slot [i] from task [i], and {!Pool.reduce}
    folds the per-index results in ascending index order on the calling
    domain after the barrier.  A computation whose tasks do not depend on
    the worker index therefore produces bit-identical results for every
    pool size, 1 included.

    {b Re-entrancy.}  Calling into the pool from inside a task (e.g. a
    pool-backed [Tensor.matmul] reached from a parallel self-play
    episode) must not deadlock on the shared queue: nested regions
    detect they are already executing on the pool and run their tasks
    inline, serially, on the current worker.  The [worker] index passed
    to task functions identifies the executing domain (0 = the
    submitting domain) so tasks can index per-worker replicas of
    non-thread-safe state; nested inline tasks inherit the enclosing
    worker's index.

    The pool is designed for a single submitting domain (the one that
    called {!Pool.create}); submitting concurrently from several domains
    is not supported. *)

module Pool : sig
  type t

  val create : domains:int -> t
  (** [create ~domains] spawns [domains - 1] worker domains (the caller
      is the remaining worker).  Values [<= 1] yield a pool of size 1
      that runs everything inline with zero synchronization. *)

  val size : t -> int
  (** Total workers applied to a region, including the caller. *)

  val shutdown : t -> unit
  (** Signal the workers to exit and join them.  Idempotent; using the
      pool afterwards raises [Invalid_argument]. *)

  val run : t -> (int -> unit) array -> unit
  (** [run t tasks] executes every task (each receives the worker index
      it runs on) and returns when all have finished — a barrier.  The
      first exception raised by any task is re-raised on the caller
      after the barrier. *)

  val parallel_for : t -> n:int -> ?chunk:int -> (worker:int -> int -> unit) -> unit
  (** [parallel_for t ~n f] runs [f ~worker i] for [i = 0 .. n-1],
      partitioned into contiguous chunks ([chunk] indices per task;
      defaults to an even split across workers). *)

  val parallel_rows : t -> rows:int -> (lo:int -> hi:int -> unit) -> unit
  (** [parallel_rows t ~rows f] partitions [0 .. rows-1] into at most
      [size t] contiguous blocks and runs [f ~lo ~hi] on each (half-open
      ranges).  The partition depends only on [rows] and the pool size,
      never on scheduling — the row-split used by the flat GEMM kernels,
      where disjoint output-row ranges touch disjoint slices of the flat
      buffer and each output cell keeps its serial accumulation order. *)

  val map : t -> f:(worker:int -> 'a -> 'b) -> 'a array -> 'b array
  (** [map t ~f xs] is [Array.map] with one task per element; result [i]
      comes from input [i] regardless of scheduling. *)

  val reduce :
    t -> n:int -> map:(worker:int -> int -> 'a) -> fold:('b -> 'a -> 'b) ->
    init:'b -> 'b
  (** [reduce t ~n ~map ~fold ~init] computes [map ~worker i] for every
      index in parallel, then folds the results {e in ascending index
      order} on the calling domain — the float-summation order is fixed
      by construction, independent of pool size and scheduling. *)
end

val recommended_domains : ?cap:int -> unit -> int
(** [Domain.recommended_domain_count ()] clamped to [\[1; cap\]]
    ([cap] defaults to 8): beyond a handful of domains the self-play
    workloads here are memory-bound and the marginal domain only adds
    GC pressure. *)
