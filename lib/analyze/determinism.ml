(* Determinism lints.  Self-play, training and the eval caches are all
   required to replay bit-identically from a seed (see DESIGN.md), so
   two whole classes of nondeterminism are banned at the source level:

   - [hashtbl-order] (warning): iterating a hash table (or the graph's
     raw adjacency) in physical order.  The order depends on insertion
     and deletion history and the hash seed, so anything accumulated
     across iterations can differ between runs.  Blessed per site with
     [@analyze.order_insensitive "why"] when every per-entry action
     commutes.

   - [unordered-float-reduce] (error): the same iteration, but the
     closure visibly accumulates floats (+. -. *. /. or Cost.add).
     Float addition is not associative, so the result depends on hash
     order — this is how irreproducible solution costs and gradients
     happen, and it is never blessable by the order attribute alone
     (restructure to a sorted iteration like Graph.fold_edges instead;
     [@analyze.ok] remains the explicit last-resort override).

   - [random-global] / [random-self-init] (error): the global [Random]
     stream or any self_init seeding.  All randomness must flow through
     an explicitly seeded [Random.State] threaded from the run
     configuration. *)

open Parsetree

let unordered_iterators =
  [
    [ "Hashtbl"; "iter" ];
    [ "Hashtbl"; "fold" ];
    [ "Graph"; "iter_adjacency" ];
    [ "Graph"; "iter_neighbors" ];
  ]

let is_unordered_iterator head =
  List.exists
    (fun pat ->
      let lp = List.length pat and lh = List.length head in
      lh >= lp
      &&
      let tail =
        List.filteri (fun i _ -> i >= lh - lp) head
      in
      tail = pat)
    unordered_iterators

let float_ops = [ "+."; "-."; "*."; "/." ]

(* Does the expression contain a direct float-accumulation operator (or
   Cost.add) at any depth?  Syntactic, not type-driven: a closure that
   sums via a helper function escapes to the weaker hashtbl-order
   warning, which is the documented limit of the rule. *)
let accumulates_floats expr =
  let found = ref false in
  let check e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match Longident.flatten txt with
        | [ op ] -> if List.mem op float_ops then found := true
        | [ "Cost"; "add" ] -> found := true
        | _ -> ())
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          check e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr;
  !found

type env = {
  file : string;
  findings : Report.t list ref;
  mutable symbol : string;
}

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let report env ~severity ~rule ~line fmt =
  Printf.ksprintf
    (fun message ->
      env.findings :=
        Report.make ~rule ~severity ~file:env.file ~line ~symbol:env.symbol
          message
        :: !(env.findings))
    fmt

let head_path expr =
  match expr.pexp_desc with
  | Pexp_ident { txt; _ } -> Longident.flatten txt
  | _ -> []

let check_apply env ~order_ok ~line f args =
  let head = head_path f in
  (if is_unordered_iterator head then
     let closure_accumulates =
       List.exists (fun (_, a) -> accumulates_floats a) args
     in
     if closure_accumulates then
       report env ~severity:Check.Diag.Error ~rule:"unordered-float-reduce"
         ~line
         "%s visits entries in hash order and the closure accumulates \
          floats: the result depends on insertion history (restructure to \
          a deterministic order, e.g. Graph.fold_edges)"
         (String.concat "." head)
     else if not order_ok then
       report env ~severity:Check.Diag.Warning ~rule:"hashtbl-order" ~line
         "%s iterates in nondeterministic hash order; bless with \
          [@analyze.order_insensitive \"why\"] if every per-entry action \
          commutes"
         (String.concat "." head));
  match head with
  | "Random" :: rest -> (
      match rest with
      | "self_init" :: _ ->
          report env ~severity:Check.Diag.Error ~rule:"random-self-init"
            ~line "Random.self_init makes runs unreproducible; seed an \
                   explicit Random.State instead"
      | "State" :: "make_self_init" :: _ ->
          report env ~severity:Check.Diag.Error ~rule:"random-self-init"
            ~line "Random.State.make_self_init makes runs unreproducible; \
                   use Random.State.make with a configured seed"
      | "State" :: _ | [] -> ()
      | f :: _ ->
          report env ~severity:Check.Diag.Error ~rule:"random-global" ~line
            "Random.%s draws from the global stream; thread a seeded \
             Random.State through the call instead"
            f)
  | _ -> ()

let rec walk env ~order_ok expr =
  if Attr.suppressed expr.pexp_attributes then ()
  else
    let order_ok =
      order_ok || Attr.order_insensitive expr.pexp_attributes
    in
    let line = line_of expr.pexp_loc in
    (match expr.pexp_desc with
    | Pexp_apply (f, args) -> check_apply env ~order_ok ~line f args
    | _ -> ());
    iter_children env ~order_ok expr

and iter_children env ~order_ok expr =
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ e -> walk env ~order_ok e);
    }
  in
  Ast_iterator.default_iterator.expr it expr

let walk_binding env vb =
  (match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> env.symbol <- txt
  | _ -> env.symbol <- "_");
  if not (Attr.suppressed vb.pvb_attributes) then
    walk env
      ~order_ok:(Attr.order_insensitive vb.pvb_attributes)
      vb.pvb_expr

let rec walk_structure env str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter (walk_binding env) vbs
      | Pstr_eval (e, _) ->
          env.symbol <- "_";
          walk env ~order_ok:false e
      | Pstr_module mb -> walk_module env mb
      | Pstr_recmodule mbs -> List.iter (walk_module env) mbs
      | _ -> ())
    str

and walk_module env mb =
  match mb.pmb_expr.pmod_desc with
  | Pmod_structure str
  | Pmod_constraint ({ pmod_desc = Pmod_structure str; _ }, _) ->
      walk_structure env str
  | _ -> ()

let check_file (f : Source.file) =
  let env = { file = f.path; findings = ref []; symbol = "-" } in
  walk_structure env f.str;
  List.rev !(env.findings)
