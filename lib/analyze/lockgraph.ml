(* Global lock-acquisition order graph.

   Nodes are qualified locks ("File.lock").  A directed edge a -> b
   means "somewhere, b is acquired while a is held" — either directly
   ([Mutex.lock b] with a in the held set) or transitively (a call made
   with a held reaches a function whose acquires-set contains b).  The
   acquires-set of each function is the least fixpoint over the call
   summaries collected by [Concurrency].

   Any cycle in the graph is a deadlock risk: two domains can enter the
   cycle at different points and wait on each other forever.  Each
   strongly connected component with more than one lock (or a self
   edge) is reported once, with a witness acquisition site.

   A callee marked [@@requires_lock "l"] is entered with [l] held by
   contract and is allowed to unlock/relock it; its re-acquisitions of
   [l] are therefore not edges out of [l] at its call sites (the
   [c_held]-membership filter below). *)

type edge = {
  e_from : string;
  e_to : string;
  e_file : string;
  e_line : int;
  e_via : string;  (* function whose acquisition created the edge *)
}

module SS = Set.Make (String)

let fixpoint_acquires (summaries : Concurrency.summary list) =
  let acq = Hashtbl.create 64 in
  let direct s =
    List.fold_left
      (fun set (a : Concurrency.acq) -> SS.add a.a_lock set)
      SS.empty s.Concurrency.sum_acquires
  in
  List.iter (fun s -> Hashtbl.replace acq s.Concurrency.sum_fn (direct s)) summaries;
  let lookup fn = Option.value ~default:SS.empty (Hashtbl.find_opt acq fn) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (s : Concurrency.summary) ->
        let cur = lookup s.sum_fn in
        let next =
          List.fold_left
            (fun set (c : Concurrency.callsite) ->
              SS.union set (lookup c.c_callee))
            cur s.sum_calls
        in
        if not (SS.equal next cur) then begin
          Hashtbl.replace acq s.sum_fn next;
          changed := true
        end)
      summaries
  done;
  lookup

let edges_of summaries =
  let acquires = fixpoint_acquires summaries in
  let out = ref [] in
  let add e = out := e :: !out in
  List.iter
    (fun (s : Concurrency.summary) ->
      List.iter
        (fun (a : Concurrency.acq) ->
          List.iter
            (fun h ->
              if h <> a.a_lock then
                add
                  {
                    e_from = h;
                    e_to = a.a_lock;
                    e_file = s.sum_file;
                    e_line = a.a_line;
                    e_via = s.sum_fn;
                  })
            a.a_held)
        s.sum_acquires;
      List.iter
        (fun (c : Concurrency.callsite) ->
          SS.iter
            (fun l ->
              List.iter
                (fun h ->
                  if h <> l && not (List.mem l c.c_held) then
                    add
                      {
                        e_from = h;
                        e_to = l;
                        e_file = s.sum_file;
                        e_line = c.c_line;
                        e_via = c.c_callee;
                      })
                c.c_held)
            (acquires c.c_callee))
        s.sum_calls)
    summaries;
  List.rev !out

(* Tarjan over the lock nodes. *)
let sccs edges =
  let succs = Hashtbl.create 16 in
  let nodes = ref SS.empty in
  List.iter
    (fun e ->
      nodes := SS.add e.e_from (SS.add e.e_to !nodes);
      let cur = Option.value ~default:[] (Hashtbl.find_opt succs e.e_from) in
      if not (List.mem e.e_to cur) then Hashtbl.replace succs e.e_from (e.e_to :: cur))
    edges;
  let index = Hashtbl.create 16
  and lowlink = Hashtbl.create 16
  and on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 and out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Option.value ~default:[] (Hashtbl.find_opt succs v));
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: tl ->
            stack := tl;
            Hashtbl.replace on_stack w false;
            if w = v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  SS.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) !nodes;
  !out

let check summaries =
  let edges = edges_of summaries in
  let findings = ref [] in
  List.iter
    (fun component ->
      let comp = SS.of_list component in
      let internal =
        List.filter
          (fun e -> SS.mem e.e_from comp && SS.mem e.e_to comp)
          edges
      in
      let cyclic =
        match component with
        | [] -> false
        | [ v ] -> List.exists (fun e -> e.e_from = v && e.e_to = v) internal
        | _ -> true
      in
      if cyclic then
        let witness =
          match internal with
          | e :: _ -> e
          | [] -> assert false
        in
        let arcs =
          internal
          |> List.map (fun e -> Printf.sprintf "%s -> %s (via %s)" e.e_from e.e_to e.e_via)
          |> List.sort_uniq String.compare
          |> String.concat "; "
        in
        findings :=
          Report.make ~rule:"lock-order-cycle" ~severity:Check.Diag.Error
            ~file:witness.e_file ~line:witness.e_line ~symbol:witness.e_via
            (Printf.sprintf
               "locks {%s} are acquired in inconsistent orders (deadlock \
                risk): %s"
               (String.concat ", " (List.sort String.compare component))
               arcs)
          :: !findings)
    (sccs edges);
  List.rev !findings
