(* Known-findings baseline.  Each non-comment line is a finding key
   ("rule|file|symbol" — no line numbers, so edits that only move code
   don't invalidate entries).  The CI gate fails on findings NOT in the
   baseline; stale entries (baselined keys that no longer fire) are
   reported so the file shrinks over time instead of rotting. *)

type entry = { rule : string; file : string; symbol : string }

let entry_key e = Printf.sprintf "%s|%s|%s" e.rule e.file e.symbol

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char '|' line with
    | [ rule; file; symbol ] ->
        Some { rule = String.trim rule; file = String.trim file; symbol = String.trim symbol }
    | _ -> None

let of_string text =
  String.split_on_char '\n' text |> List.filter_map parse_line

let load path =
  if Sys.file_exists path then
    of_string (In_channel.with_open_text path In_channel.input_all)
  else []

(* Split findings into (fresh, baselined-count); also report which
   baseline entries never matched. *)
type applied = {
  fresh : Report.t list;
  suppressed : int;
  stale : entry list;  (* baselined keys with no matching finding *)
}

let apply entries findings =
  let keys = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace keys (entry_key e) 0) entries;
  let fresh =
    List.filter
      (fun f ->
        let k = Report.key f in
        match Hashtbl.find_opt keys k with
        | Some n ->
            Hashtbl.replace keys k (n + 1);
            false
        | None -> true)
      findings
  in
  let stale =
    List.filter (fun e -> Hashtbl.find keys (entry_key e) = 0) entries
  in
  { fresh; suppressed = List.length findings - List.length fresh; stale }

let to_string findings =
  let keys =
    List.sort_uniq String.compare (List.map Report.key findings)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "# pbqp_analyze known-findings baseline.  One key per line:\n\
     #   rule|file|symbol\n\
     # Regenerate with: pbqp_analyze --write-baseline <this file>\n";
  List.iter
    (fun k ->
      Buffer.add_string buf k;
      Buffer.add_char buf '\n')
    keys;
  Buffer.contents buf

let write path findings =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string findings))
