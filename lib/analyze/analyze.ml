(* Top-level driver: load sources, build the symbol registry, run the
   three rule families, merge and sort.  This module is the library's
   public face — bin/pbqp_analyze, test_analyze and the bench harness
   all go through [run]. *)

module Report = Report
module Baseline = Baseline
module Source = Source

type result = {
  findings : Report.t list;  (* sorted by (file, line, rule) *)
  files : int;  (* files successfully parsed *)
}

let parse_error_finding (e : Source.parse_error) =
  Report.make ~rule:"parse-error" ~severity:Check.Diag.Error ~file:e.pe_path
    ~line:e.pe_line ~symbol:"-"
    (Printf.sprintf "file does not parse: %s" e.pe_msg)

let run ~roots =
  let files, parse_errors = Source.load_roots roots in
  let symtab = Symtab.build files in
  let conc = List.map (Concurrency.check_file symtab) files in
  let findings =
    List.map parse_error_finding parse_errors
    @ List.concat_map fst conc
    @ List.concat_map Determinism.check_file files
    @ List.concat_map (Hotpath.check_file symtab) files
    @ Lockgraph.check (List.concat_map snd conc)
  in
  { findings = List.sort Report.compare findings; files = List.length files }
