(* Analyzer findings: a thin layer over [Check.Diag] that adds the
   source coordinates (file, line, enclosing top-level symbol) every
   static-analysis rule needs, plus the text and JSON renderings the
   CLI emits. *)

type t = {
  rule : string;
  severity : Check.Diag.severity;
  file : string;
  line : int;
  symbol : string;  (* enclosing top-level binding, or "-" *)
  message : string;
}

let make ~rule ~severity ~file ~line ~symbol message =
  { rule; severity; file; line; symbol; message }

let to_diag t =
  {
    Check.Diag.severity = t.severity;
    rule = t.rule;
    location = Check.Diag.Src (t.file, t.line);
    message = Printf.sprintf "(%s) %s" t.symbol t.message;
  }

(* Stable identity for baselining: line numbers churn with every edit,
   so the key is (rule, file, symbol). *)
let key t = Printf.sprintf "%s|%s|%s" t.rule t.file t.symbol

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else String.compare a.rule b.rule

let severity_order = function
  | Check.Diag.Error -> 0
  | Check.Diag.Warning -> 1
  | Check.Diag.Info -> 2

let errors ts = List.filter (fun t -> t.severity = Check.Diag.Error) ts

let pp_finding ppf t =
  Format.fprintf ppf "%s[%s] %s:%d (%s): %s"
    (Check.Diag.severity_string t.severity)
    t.rule t.file t.line t.symbol t.message

let pp_report ppf ts =
  let ts = List.sort compare ts in
  List.iter (fun t -> Format.fprintf ppf "%a@." pp_finding t) ts;
  let e = List.length (errors ts) and n = List.length ts in
  Format.fprintf ppf "%d finding%s (%d error%s)@." n
    (if n = 1 then "" else "s")
    e
    (if e = 1 then "" else "s")

let to_string ts = Format.asprintf "%a" pp_report ts

(* --- JSON (matches the hand-rolled style of bench/main.ml) ----------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_json t =
  Printf.sprintf
    {|{"rule":"%s","severity":"%s","file":"%s","line":%d,"symbol":"%s","message":"%s"}|}
    (json_escape t.rule)
    (Check.Diag.severity_string t.severity)
    (json_escape t.file) t.line (json_escape t.symbol) (json_escape t.message)

let to_json ?(baselined = 0) ~files ts =
  let ts = List.sort compare ts in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"pbqp-analyze-v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"files\": %d,\n" files);
  Buffer.add_string buf (Printf.sprintf "  \"baselined\": %d,\n" baselined);
  Buffer.add_string buf
    (Printf.sprintf "  \"errors\": %d,\n" (List.length (errors ts)));
  Buffer.add_string buf "  \"findings\": [";
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      Buffer.add_string buf (finding_json t))
    ts;
  if ts <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf
