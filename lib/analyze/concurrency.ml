(* Concurrency lints: a syntactic held-lock-set analysis.

   The walker threads an abstract "locks held here" set through each
   top-level binding's body: [Mutex.lock l] adds the canonical name of
   [l], [Mutex.unlock l] removes it, [Mutex.protect l f] scopes it over
   [f]'s body, sequencing threads the set left to right, and branches
   (if/match/try) exit with the INTERSECTION of their branch exit sets
   — the conservative "definitely held" semantics.  Lambdas are walked
   with the held set at their definition point, which matches this
   repo's idiom (closures built under a lock run under that lock, e.g.
   [Mutex.protect m (fun () -> ...)] and the inline worker bodies).

   Against that state the pass checks:
   - [guarded-by]: reads/writes of [@guarded_by "l"] fields and
     globals must occur with [l] (canonically) held;
   - [requires-lock]: calls to [@@requires_lock "l"] functions must
     hold [l]; those functions' own bodies are walked with [l] seeded;
   - [lock-reacquire]: [Mutex.lock l] while [l] is already held (OCaml
     mutexes are not reentrant — this self-deadlocks);
   - [unguarded-global-mutable]: module-level mutable state (ref /
     Hashtbl.create / Array.make / ...) with no [@guarded_by], not
     [Atomic.make], and no [@@analyze.unshared] waiver — anything at
     module level is reachable from every [Domain.spawn]/pool closure;
   - [malformed-annotation]: analyzer attributes missing their string
     payload.

   Locks are identified by the last path component of the expression
   passed to Mutex.lock ("t.mutex" and "pool.mutex" are both "mutex").
   That canonicalisation is what makes the purely syntactic analysis
   line up with [@guarded_by "mutex"] annotations; it conflates
   distinct mutexes that share a field name, which is conservative for
   guarded-by (accepts more) and only over-approximates the lock graph
   (merges nodes, never hides an edge... at file granularity nodes are
   qualified "File.lock", see [Lockgraph]). *)

open Parsetree

(* Per-function facts exported to the lock-order pass. *)
type acq = {
  a_lock : string;  (* qualified "File.lock" *)
  a_held : string list;  (* qualified locks held at the acquisition *)
  a_line : int;
}

type callsite = {
  c_callee : string;  (* resolved qualified function name *)
  c_held : string list;
  c_line : int;
}

type summary = {
  sum_fn : string;
  sum_file : string;
  mutable sum_acquires : acq list;
  mutable sum_calls : callsite list;
}

type env = {
  file : string;
  modname : string;
  mutable modpath : string list;
  symtab : Symtab.t;
  findings : Report.t list ref;
  summaries : summary list ref;
  mutable symbol : string;  (* enclosing top-level binding *)
  mutable cur : summary;
}

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let report env ~severity ~rule ~line fmt =
  Printf.ksprintf
    (fun message ->
      env.findings :=
        Report.make ~rule ~severity ~file:env.file ~line ~symbol:env.symbol
          message
        :: !(env.findings))
    fmt

let error env = report env ~severity:Check.Diag.Error
let warning env = report env ~severity:Check.Diag.Warning

(* --- lock identity --------------------------------------------------- *)

let rec last_component lid =
  match lid with
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply (_, l) -> last_component l

(* Canonical (unqualified) name of the lock denoted by an expression, or
   None when the expression is too dynamic to track (e.g. an array
   element: Stripedcache locks [fst c.shards.(i)] — those regions are
   simply not attributed to a named lock). *)
let rec lock_name expr =
  match expr.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (last_component txt)
  | Pexp_field (_, { txt; _ }) -> Some (last_component txt)
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> lock_name e
  | _ -> None

let qualify env lock = env.modname ^ "." ^ lock

(* held sets are small (1-2 locks); sorted string lists *)
let add_held l held = List.sort_uniq String.compare (l :: held)
let remove_held l held = List.filter (fun x -> x <> l) held
let inter a b = List.filter (fun x -> List.mem x b) a

let intersect_all = function
  | [] -> []
  | h :: tl -> List.fold_left inter h tl

(* --- the walker ------------------------------------------------------ *)

let head_path expr =
  match expr.pexp_desc with
  | Pexp_ident { txt; _ } -> Longident.flatten txt
  | _ -> []

let check_guarded_field env ~line ~what name held =
  match Symtab.guarded_field env.symtab name with
  | Some lock when not (List.mem lock held) ->
      error env ~rule:"guarded-by" ~line
        "%s of field '%s' guarded by \"%s\" outside its lock region (held: %s)"
        what name lock
        (if held = [] then "none" else String.concat ", " held)
  | _ -> ()

let check_guarded_global env ~line parts held =
  match Symtab.guarded_global env.symtab ~modpath:env.modpath parts with
  | Some lock when not (List.mem lock held) ->
      error env ~rule:"guarded-by" ~line
        "access to global '%s' guarded by \"%s\" outside its lock region"
        (String.concat "." parts) lock
  | _ -> ()

let record_acquire env ~line lock held =
  if List.mem lock held then
    error env ~rule:"lock-reacquire" ~line
      "Mutex.lock on \"%s\" while \"%s\" is already held (OCaml mutexes \
       are not reentrant: this self-deadlocks)"
      lock lock;
  env.cur.sum_acquires <-
    {
      a_lock = qualify env lock;
      a_held = List.map (qualify env) (remove_held lock held);
      a_line = line;
    }
    :: env.cur.sum_acquires

let record_call env ~line parts held =
  match Symtab.find_fn env.symtab ~modpath:env.modpath parts with
  | None -> ()
  | Some (fi : Symtab.fninfo) ->
      (match fi.fn_requires with
      | Some lock when not (List.mem lock held) ->
          error env ~rule:"requires-lock" ~line
            "call to %s, which requires \"%s\" held, outside its lock region"
            fi.fn_name lock
      | _ -> ());
      env.cur.sum_calls <-
        {
          c_callee = fi.fn_name;
          c_held = List.map (qualify env) held;
          c_line = line;
        }
        :: env.cur.sum_calls

(* Walk [expr] with [held] locks; returns the held set at the
   expression's exit. *)
let rec walk env held expr =
  if Attr.suppressed expr.pexp_attributes then held
  else
    let line = line_of expr.pexp_loc in
    match expr.pexp_desc with
    | Pexp_apply (f, args) -> walk_apply env held ~line f args
    | Pexp_ident { txt; _ } ->
        check_guarded_global env ~line (Longident.flatten txt) held;
        held
    | Pexp_field (e, { txt; _ }) ->
        check_guarded_field env ~line ~what:"read" (last_component txt) held;
        ignore (walk env held e);
        held
    | Pexp_setfield (e1, { txt; _ }, e2) ->
        check_guarded_field env ~line ~what:"write" (last_component txt) held;
        ignore (walk env held e1);
        ignore (walk env held e2);
        held
    | Pexp_sequence (a, b) -> walk env (walk env held a) b
    | Pexp_let (_, vbs, body) ->
        let held =
          List.fold_left
            (fun held vb ->
              if Attr.suppressed vb.pvb_attributes then held
              else walk env held vb.pvb_expr)
            held vbs
        in
        walk env held body
    | Pexp_fun (_, default, _, body) ->
        Option.iter (fun d -> ignore (walk env held d)) default;
        ignore (walk env held body);
        held
    | Pexp_function cases ->
        walk_cases env held cases |> ignore;
        held
    | Pexp_match (scrut, cases) ->
        let h = walk env held scrut in
        walk_cases env h cases
    | Pexp_try (body, handlers) ->
        let h = walk env held body in
        (* a handler can run with the body partially executed: enter it
           with what was held at try-entry, and require agreement *)
        let hh = walk_cases env held handlers in
        inter h hh
    | Pexp_ifthenelse (c, t, e) ->
        let hc = walk env held c in
        let ht = walk env hc t in
        let he = match e with Some e -> walk env hc e | None -> hc in
        inter ht he
    | Pexp_while (c, body) ->
        let hc = walk env held c in
        ignore (walk env hc body);
        held
    | Pexp_for (_, a, b, _, body) ->
        ignore (walk env held a);
        ignore (walk env held b);
        ignore (walk env held body);
        held
    | Pexp_constraint (e, _)
    | Pexp_coerce (e, _, _)
    | Pexp_open (_, e)
    | Pexp_letmodule (_, _, e)
    | Pexp_letexception (_, e)
    | Pexp_newtype (_, e) ->
        walk env held e
    | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) ->
        ignore (walk env held e);
        held
    | Pexp_tuple es | Pexp_array es ->
        List.iter (fun e -> ignore (walk env held e)) es;
        held
    | Pexp_record (fields, base) ->
        Option.iter (fun b -> ignore (walk env held b)) base;
        List.iter (fun (_, e) -> ignore (walk env held e)) fields;
        held
    | Pexp_assert e | Pexp_lazy e ->
        ignore (walk env held e);
        held
    | Pexp_letop { let_; ands; body } ->
        ignore (walk env held let_.pbop_exp);
        List.iter (fun a -> ignore (walk env held a.pbop_exp)) ands;
        ignore (walk env held body);
        held
    | _ -> held

and walk_cases env held cases =
  let exits =
    List.map
      (fun c ->
        Option.iter (fun g -> ignore (walk env held g)) c.pc_guard;
        walk env held c.pc_rhs)
      cases
  in
  intersect_all (held :: exits)

and walk_apply env held ~line f args =
  let arg_exprs = List.map snd args in
  match (head_path f, arg_exprs) with
  | [ "Mutex"; "lock" ], [ arg ] -> (
      match lock_name arg with
      | Some l ->
          record_acquire env ~line l held;
          add_held l held
      | None -> held)
  | [ "Mutex"; "unlock" ], [ arg ] -> (
      match lock_name arg with
      | Some l -> remove_held l held
      | None -> held)
  | [ "Mutex"; "protect" ], [ lockarg; fn ] -> (
      match lock_name lockarg with
      | Some l ->
          record_acquire env ~line l held;
          let inner = add_held l held in
          (match fn.pexp_desc with
          | Pexp_fun (_, _, _, body) -> ignore (walk env inner body)
          | _ -> ignore (walk env inner fn));
          held
      | None ->
          ignore (walk env held fn);
          held)
  | ([ "Condition"; _ ] | [ "Mutex"; _ ]), _ ->
      (* Condition.wait releases and reacquires atomically: the lock is
         held again on return, so the held set is unchanged. *)
      List.iter (fun a -> ignore (walk env held a)) arg_exprs;
      held
  | head, _ ->
      if head <> [] then record_call env ~line head held;
      ignore (walk env held f);
      List.iter (fun a -> ignore (walk env held a)) arg_exprs;
      held

(* --- module-level mutable state -------------------------------------- *)

let rec strip expr =
  match expr.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) ->
      strip e
  | _ -> expr

let mutable_makers =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Buffer"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "create_float" ];
    [ "Array"; "init" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Weak"; "create" ];
  ]

let mutable_maker expr =
  match (strip expr).pexp_desc with
  | Pexp_apply (f, _) ->
      let head = head_path f in
      if List.mem head mutable_makers then
        Some (String.concat "." head)
      else None
  | _ -> None

let check_toplevel_binding env vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt = name; _ } -> (
      let attrs = vb.pvb_attributes in
      (* malformed payload forms *)
      List.iter
        (fun probe ->
          match probe attrs with
          | Some (Error nm) ->
              error env ~rule:"malformed-annotation"
                ~line:(line_of vb.pvb_loc)
                "[@%s] on '%s' needs a string literal payload" nm name
          | _ -> ())
        [ Attr.guarded_by; Attr.requires_lock ];
      match mutable_maker vb.pvb_expr with
      | Some maker
        when (not (Attr.unshared attrs))
             && (not (Attr.suppressed attrs))
             && Attr.guarded_by attrs = None ->
          warning env ~rule:"unguarded-global-mutable"
            ~line:(line_of vb.pvb_loc)
            "module-level mutable '%s' (%s) is reachable from every \
             Domain.spawn/pool closure; guard it with [@guarded_by \
             \"lock\"], make it Atomic, or waive with [@@analyze.unshared \
             \"why\"]"
            name maker
      | _ -> ())
  | _ -> ()

(* --- driver over a file ---------------------------------------------- *)

let fresh_summary env name =
  let s =
    { sum_fn = name; sum_file = env.file; sum_acquires = []; sum_calls = [] }
  in
  env.summaries := s :: !(env.summaries);
  s

(* Peel the parameter chain: a [@@requires_lock] function's lock is
   held at its BODY's entry, not around the parameter defaults. *)
let rec fn_body e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, b) -> fn_body b
  | Pexp_newtype (_, b) -> fn_body b
  | Pexp_constraint (b, _) -> fn_body b
  | _ -> e

let walk_binding env vb =
  let name =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } -> txt
    | _ -> "_"
  in
  env.symbol <- name;
  env.cur <- fresh_summary env (Symtab.qualify env.modpath name);
  check_toplevel_binding env vb;
  if not (Attr.suppressed vb.pvb_attributes) then
    let entry =
      match Attr.requires_lock vb.pvb_attributes with
      | Some (Ok lock) -> [ lock ]
      | _ -> []
    in
    ignore (walk env entry (fn_body vb.pvb_expr))

let rec walk_structure env str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter (walk_binding env) vbs
      | Pstr_module mb -> walk_module env mb
      | Pstr_recmodule mbs -> List.iter (walk_module env) mbs
      | Pstr_eval (e, _) ->
          env.symbol <- "_";
          env.cur <- fresh_summary env (Symtab.qualify env.modpath "_");
          ignore (walk env [] e)
      | _ -> ())
    str

and walk_module env mb =
  match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
  | Some name, Pmod_structure str
  | ( Some name,
      Pmod_constraint ({ pmod_desc = Pmod_structure str; _ }, _) ) ->
      let saved = env.modpath in
      env.modpath <- saved @ [ name ];
      walk_structure env str;
      env.modpath <- saved
  | _ -> ()

let check_file symtab (f : Source.file) =
  let findings = ref [] and summaries = ref [] in
  let env =
    {
      file = f.path;
      modname = f.modname;
      modpath = [ f.modname ];
      symtab;
      findings;
      summaries;
      symbol = "-";
      cur =
        { sum_fn = "-"; sum_file = f.path; sum_acquires = []; sum_calls = [] };
    }
  in
  walk_structure env f.str;
  (List.rev !findings, List.rev !summaries)
