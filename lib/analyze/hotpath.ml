(* Hot-path allocation lint.  Functions marked [@@hot] promise the
   allocation-free discipline the trail state and forward buffers are
   built around (ROADMAP: zero-allocation steady state); this pass
   flags the syntactic allocation sources inside their bodies:

   - [hot-closure]: a fun/function literal below the parameter chain —
     closures capturing their environment allocate on every call;
   - [hot-partial-apply]: a call that supplies fewer arguments than the
     callee's registered arity, which builds an intermediate closure;
   - [hot-boxed-alloc]: tuples (except as a match scrutinee, which the
     compiler deconstructs in place), records, arrays, non-constant
     constructors, list/string concatenation;
   - [hot-boxed-matrix]: a boxed row-pointer matrix ([Array.make_matrix]
     or a nested array literal) — each row is a separate heap block, so
     every row access chases a pointer; hot numeric code must use a flat
     [floatarray]/[Bigarray] with [i * cols + j] indexing (what
     [Tensor.t] does);
   - [hot-alloc-call]: calls into known-allocating stdlib entry points
     (List.map, Array.copy, Float.Array.make, Bigarray.Array1.create,
     String.concat, ...);
   - [hot-printf]: Printf/Format — formatting allocates pervasively.

   Deliberate non-rules: bare [ref] creation is NOT flagged (the local
   loop-counter idiom in Tensor.matmul_rows; escape analysis keeps it
   cheap and the point of the lint is steady-state churn, not local
   scratch), and float boxing is invisible to a syntactic pass — the
   bench allocs-per-op regression gate owns that.  Escape hatch:
   [@analyze.ok "why"] on any subtree. *)

open Parsetree

type env = {
  file : string;
  modpath : string list;
  symtab : Symtab.t;
  findings : Report.t list ref;
  symbol : string;
}

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let report env ~rule ~line fmt =
  Printf.ksprintf
    (fun message ->
      env.findings :=
        Report.make ~rule ~severity:Check.Diag.Warning ~file:env.file ~line
          ~symbol:env.symbol message
        :: !(env.findings))
    fmt

let head_path expr =
  match expr.pexp_desc with
  | Pexp_ident { txt; _ } -> Longident.flatten txt
  | _ -> []

let allocating_calls =
  [
    ([ "List"; "map" ], "builds a fresh list");
    ([ "List"; "mapi" ], "builds a fresh list");
    ([ "List"; "filter" ], "builds a fresh list");
    ([ "List"; "append" ], "copies the prefix list");
    ([ "List"; "concat" ], "builds a fresh list");
    ([ "List"; "rev" ], "builds a fresh list");
    ([ "List"; "sort" ], "allocates a working copy");
    ([ "Array"; "make" ], "allocates an array");
    ([ "Array"; "init" ], "allocates an array");
    ([ "Array"; "copy" ], "allocates an array");
    ([ "Array"; "append" ], "allocates an array");
    ([ "Array"; "map" ], "allocates an array");
    ([ "Array"; "of_list" ], "allocates an array");
    ([ "Array"; "to_list" ], "builds a fresh list");
    ([ "Float"; "Array"; "make" ], "allocates a floatarray");
    ([ "Float"; "Array"; "create" ], "allocates a floatarray");
    ([ "Float"; "Array"; "init" ], "allocates a floatarray");
    ([ "Float"; "Array"; "copy" ], "allocates a floatarray");
    ([ "Float"; "Array"; "sub" ], "allocates a floatarray");
    ([ "Float"; "Array"; "append" ], "allocates a floatarray");
    ([ "Float"; "Array"; "map" ], "allocates a floatarray");
    ([ "Float"; "Array"; "of_list" ], "allocates a floatarray");
    ([ "Float"; "Array"; "map_from_array" ], "allocates a floatarray");
    ([ "Float"; "Array"; "map_to_array" ], "allocates an array");
    ([ "Bigarray"; "Array1"; "create" ], "allocates a bigarray");
    ([ "Bigarray"; "Array2"; "create" ], "allocates a bigarray");
    ([ "Bigarray"; "Array1"; "of_array" ], "allocates a bigarray");
    ([ "Bigarray"; "Array2"; "of_array" ], "allocates a bigarray");
    ([ "String"; "concat" ], "allocates a string");
    ([ "String"; "make" ], "allocates a string");
    ([ "String"; "sub" ], "allocates a string");
    ([ "Bytes"; "create" ], "allocates a buffer");
    ([ "Hashtbl"; "create" ], "allocates a table");
    ([ "Buffer"; "create" ], "allocates a buffer");
  ]

let infix_allocators = [ ("^", "string concatenation"); ("@", "list append") ]

let check_apply env ~line f args =
  let head = head_path f in
  (match head with
  | [ "Array"; "make_matrix" ] ->
      report env ~rule:"hot-boxed-matrix" ~line
        "Array.make_matrix in a [@hot] body builds a boxed row-pointer \
         matrix (one heap block per row); use a flat floatarray/Bigarray \
         with i * cols + j indexing"
  | ("Printf" | "Format") :: fn :: _ ->
      report env ~rule:"hot-printf" ~line
        "%s.%s in a [@hot] body: formatting allocates on every call"
        (List.hd head) fn
  | [ op ] when List.mem_assoc op infix_allocators ->
      report env ~rule:"hot-boxed-alloc" ~line
        "(%s) in a [@hot] body: %s allocates" op
        (List.assoc op infix_allocators)
  | _ -> (
      match List.assoc_opt head allocating_calls with
      | Some why ->
          report env ~rule:"hot-alloc-call" ~line
            "%s in a [@hot] body %s on every call"
            (String.concat "." head) why
      | None -> ()));
  (* partial application against the repo-wide arity registry *)
  if head <> [] && not (List.mem_assoc head allocating_calls) then
    match Symtab.find_fn env.symtab ~modpath:env.modpath head with
    | Some (fi : Symtab.fninfo)
      when fi.fn_arity > 0 && List.length args < fi.fn_arity ->
        report env ~rule:"hot-partial-apply" ~line
          "partial application of %s (%d of %d arguments) builds a \
           closure in a [@hot] body"
          fi.fn_name (List.length args) fi.fn_arity
    | _ -> ()

let rec walk env expr =
  if Attr.suppressed expr.pexp_attributes then ()
  else
    let line = line_of expr.pexp_loc in
    match expr.pexp_desc with
    | Pexp_fun (_, default, _, body) ->
        report env ~rule:"hot-closure" ~line
          "closure literal in a [@hot] body allocates at every evaluation";
        Option.iter (walk env) default;
        walk env body
    | Pexp_function cases ->
        report env ~rule:"hot-closure" ~line
          "closure literal in a [@hot] body allocates at every evaluation";
        List.iter (walk_case env) cases
    | Pexp_apply (f, args) ->
        check_apply env ~line f args;
        walk env f;
        List.iter (fun (_, a) -> walk env a) args
    | Pexp_match (scrut, cases) ->
        (* [match (a, b) with ...] does not build the tuple: walk the
           components without flagging the scrutinee itself *)
        (match scrut.pexp_desc with
        | Pexp_tuple es when not (Attr.suppressed scrut.pexp_attributes) ->
            List.iter (walk env) es
        | _ -> walk env scrut);
        List.iter (walk_case env) cases
    | Pexp_tuple es ->
        report env ~rule:"hot-boxed-alloc" ~line
          "tuple construction allocates in a [@hot] body";
        List.iter (walk env) es
    | Pexp_record (fields, base) ->
        report env ~rule:"hot-boxed-alloc" ~line
          "record construction allocates in a [@hot] body";
        Option.iter (walk env) base;
        List.iter (fun (_, e) -> walk env e) fields
    | Pexp_array es ->
        let is_array e =
          match e.pexp_desc with Pexp_array _ -> true | _ -> false
        in
        if List.exists is_array es then begin
          report env ~rule:"hot-boxed-matrix" ~line
            "nested array literal builds a boxed row-pointer matrix in a \
             [@hot] body; use a flat floatarray/Bigarray with i * cols + j \
             indexing";
          (* the row literals are part of the one matrix already reported:
             walk their elements without re-flagging each row *)
          List.iter
            (fun e ->
              match e.pexp_desc with
              | Pexp_array inner when not (Attr.suppressed e.pexp_attributes)
                ->
                  List.iter (walk env) inner
              | _ -> walk env e)
            es
        end
        else begin
          report env ~rule:"hot-boxed-alloc" ~line
            "array literal allocates in a [@hot] body";
          List.iter (walk env) es
        end
    | Pexp_construct ({ txt; _ }, Some arg) ->
        report env ~rule:"hot-boxed-alloc" ~line
          "constructor %s with a payload allocates in a [@hot] body"
          (String.concat "." (Longident.flatten txt));
        walk env arg
    | Pexp_variant (_, Some arg) ->
        report env ~rule:"hot-boxed-alloc" ~line
          "polymorphic variant with a payload allocates in a [@hot] body";
        walk env arg
    | Pexp_lazy e ->
        report env ~rule:"hot-boxed-alloc" ~line
          "lazy thunk allocates in a [@hot] body";
        walk env e
    | Pexp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            if not (Attr.suppressed vb.pvb_attributes) then walk env vb.pvb_expr)
          vbs;
        walk env body
    | Pexp_sequence (a, b) ->
        walk env a;
        walk env b
    | Pexp_ifthenelse (c, t, e) ->
        walk env c;
        walk env t;
        Option.iter (walk env) e
    | Pexp_while (c, b) ->
        walk env c;
        walk env b
    | Pexp_for (_, a, b, _, body) ->
        walk env a;
        walk env b;
        walk env body
    | Pexp_try (body, handlers) ->
        walk env body;
        List.iter (walk_case env) handlers
    | Pexp_constraint (e, _)
    | Pexp_coerce (e, _, _)
    | Pexp_open (_, e)
    | Pexp_newtype (_, e)
    | Pexp_assert e
    | Pexp_field (e, _) ->
        walk env e
    | Pexp_setfield (e1, _, e2) ->
        walk env e1;
        walk env e2
    | _ -> ()

and walk_case env c =
  Option.iter (walk env) c.pc_guard;
  walk env c.pc_rhs

(* Walk only [@@hot] bindings; the parameter chain itself is fine. *)
let rec fn_body e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, b) -> fn_body b
  | Pexp_newtype (_, b) -> fn_body b
  | Pexp_constraint (b, _) -> fn_body b
  | Pexp_function _ -> e  (* a [function] body is the body *)
  | _ -> e

let walk_binding ~file ~modpath ~symtab ~findings vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt = name; _ } when Attr.is_hot vb.pvb_attributes ->
      let env = { file; modpath; symtab; findings; symbol = name } in
      let body = fn_body vb.pvb_expr in
      (match body.pexp_desc with
      | Pexp_function cases -> List.iter (walk_case env) cases
      | _ -> walk env body)
  | _ -> ()

let rec walk_structure ~file ~modpath ~symtab ~findings str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter (walk_binding ~file ~modpath ~symtab ~findings) vbs
      | Pstr_module mb -> walk_mod ~file ~modpath ~symtab ~findings mb
      | Pstr_recmodule mbs ->
          List.iter (walk_mod ~file ~modpath ~symtab ~findings) mbs
      | _ -> ())
    str

and walk_mod ~file ~modpath ~symtab ~findings mb =
  match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
  | Some name, Pmod_structure str
  | ( Some name,
      Pmod_constraint ({ pmod_desc = Pmod_structure str; _ }, _) ) ->
      walk_structure ~file ~modpath:(modpath @ [ name ]) ~symtab ~findings str
  | _ -> ()

let check_file symtab (f : Source.file) =
  let findings = ref [] in
  walk_structure ~file:f.path ~modpath:[ f.modname ] ~symtab ~findings f.str;
  List.rev !findings
