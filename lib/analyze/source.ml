(* Source loader: find .ml files under the analysis roots and parse
   them with the compiler's own parser (compiler-libs) into Parsetree
   structures.  The analyzer is purely syntactic — it never runs the
   typer — so a file only has to parse, which lets the fixture corpus
   reference modules that do not exist. *)

type file = {
  path : string;  (* as discovered, relative to the analysis cwd *)
  modname : string;  (* capitalized basename, OCaml's module naming *)
  str : Parsetree.structure;
}

type parse_error = { pe_path : string; pe_line : int; pe_msg : string }

let modname_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let parse_string ~path text =
  let lb = Lexing.from_string text in
  Location.init lb path;
  match Parse.implementation lb with
  | str -> Ok { path; modname = modname_of_path path; str }
  | exception exn ->
      let line =
        match Location.error_of_exn exn with
        | Some (`Ok (e : Location.error)) ->
            e.main.loc.loc_start.Lexing.pos_lnum
        | _ -> lb.Lexing.lex_curr_p.Lexing.pos_lnum
      in
      Error { pe_path = path; pe_line = line; pe_msg = Printexc.to_string exn }

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string ~path text
  | exception Sys_error msg -> Error { pe_path = path; pe_line = 0; pe_msg = msg }

(* Every .ml under [dir], recursively; skips _build and dot
   directories.  Sorted so runs are reproducible no matter what order
   the OS lists directory entries in. *)
let rec ml_files_under dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc name ->
          let path = Filename.concat dir name in
          if String.length name > 0 && name.[0] = '.' then acc
          else if Sys.is_directory path then
            if name = "_build" then acc else acc @ ml_files_under path
          else if Filename.check_suffix name ".ml" then acc @ [ path ]
          else acc)
        [] entries

let load_roots roots =
  let paths =
    List.concat_map
      (fun root ->
        if Sys.file_exists root && Sys.is_directory root then
          ml_files_under root
        else [ root ])
      roots
  in
  let paths = List.sort_uniq String.compare paths in
  List.fold_left
    (fun (files, errs) path ->
      match parse_file path with
      | Ok f -> (f :: files, errs)
      | Error e -> (files, e :: errs))
    ([], []) paths
  |> fun (files, errs) -> (List.rev files, List.rev errs)
