(* The annotation vocabulary the analyzer understands, and where each
   annotation physically lands in the Parsetree:

   - [@guarded_by "lock"]       record fields ([pld_attributes]) and
                                module-level bindings ([pvb_attributes])
   - [@@requires_lock "lock"]   functions entered with the lock held
   - [@@hot]                    allocation-free function contract
   - [@analyze.ok "why"]        expression/binding: suppress every rule
                                in the subtree
   - [@analyze.order_insensitive "why"]
                                expression/binding: bless unordered
                                iteration (order rules only)
   - [@@analyze.unshared "why"] module-level mutable opt-out (value is
                                provably confined to one domain)

   The payload-bearing forms require a string literal; a bare
   [@guarded_by] or non-string payload is itself reported upstream as a
   malformed annotation. *)

open Parsetree

let name (a : attribute) = a.attr_name.txt

let string_payload (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let find nm attrs = List.find_opt (fun a -> name a = nm) attrs
let has nm attrs = List.exists (fun a -> name a = nm) attrs

(* [Some (Ok lock)] when present with a string payload, [Some (Error nm)]
   when present but malformed, [None] when absent. *)
let payload nm attrs =
  match find nm attrs with
  | None -> None
  | Some a -> (
      match string_payload a with
      | Some s -> Some (Ok s)
      | None -> Some (Error nm))

let guarded_by attrs = payload "guarded_by" attrs
let requires_lock attrs = payload "requires_lock" attrs
let is_hot attrs = has "hot" attrs
let suppressed attrs = has "analyze.ok" attrs
let order_insensitive attrs = has "analyze.order_insensitive" attrs
let unshared attrs = has "analyze.unshared" attrs

(* A record field's attribute may be written before or after the type
   expression; the parser files the two spellings in different places. *)
let field_attrs (ld : label_declaration) =
  ld.pld_attributes @ ld.pld_type.ptyp_attributes
