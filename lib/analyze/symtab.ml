(* Whole-repo symbol registry, built in one pass before any rule runs:

   - every top-level function (including those in nested [module X =
     struct ... end]) keyed by qualified name "File.Inner.f", with its
     syntactic arity and analyzer attributes ([@@hot],
     [@@requires_lock]);
   - every [@guarded_by]-annotated record field, keyed by field name;
   - every [@guarded_by]-annotated module-level binding, keyed by
     qualified name.

   Reference resolution is purely lexical: a use site inside module
   path [P] tries [P @ parts] for every prefix of [P] (innermost
   first), then falls back to dropping leading components of [parts]
   (so [Nn.Pvnet.predict] seen from another library resolves to the
   registry key "Pvnet.predict").  That is deliberately loose — the
   analyzer has no typer — but collisions only soften the lints (a
   wrong arity just mutes a partial-application warning). *)

open Parsetree

type fninfo = {
  fn_name : string;  (* qualified: "File.Inner.f" *)
  fn_arity : int;  (* leading fun-parameter count; 0 = not a function *)
  fn_hot : bool;
  fn_requires : string option;  (* lock the caller must hold *)
  fn_file : string;
  fn_line : int;
}

type t = {
  fns : (string, fninfo) Hashtbl.t;
  guarded_fields : (string, string) Hashtbl.t;  (* field -> lock *)
  guarded_globals : (string, string) Hashtbl.t;  (* "File.x" -> lock *)
}

let create () =
  {
    fns = Hashtbl.create 256;
    guarded_fields = Hashtbl.create 16;
    guarded_globals = Hashtbl.create 16;
  }

let qualify modpath name = String.concat "." (modpath @ [ name ])

(* Count the leading parameter chain of a binding's expression.  A
   [function]-style body counts as one parameter and ends the chain.
   Labelled/optional parameters make positional arity counting at call
   sites unreliable (optional arguments erase silently), so such
   functions report arity 0, which disables the partial-application
   lint for them — conservative in the "fewer findings" direction. *)
let rec arity_of expr =
  match expr.pexp_desc with
  | Pexp_fun (Asttypes.Nolabel, _, _, body) ->
      let rest = arity_of body in
      if rest < 0 then rest else 1 + rest
  | Pexp_fun (_, _, _, _) -> -1
  | Pexp_function _ -> 1
  | Pexp_newtype (_, body) -> arity_of body
  | Pexp_constraint (e, _) -> arity_of e
  | _ -> 0

let arity_of expr = max 0 (arity_of expr)

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let ok_payload = function Some (Ok s) -> Some s | _ -> None

let register_binding t ~file ~modpath vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt = name; _ } ->
      let qname = qualify modpath name in
      let attrs = vb.pvb_attributes in
      Hashtbl.replace t.fns qname
        {
          fn_name = qname;
          fn_arity = arity_of vb.pvb_expr;
          fn_hot = Attr.is_hot attrs;
          fn_requires = ok_payload (Attr.requires_lock attrs);
          fn_file = file;
          fn_line = line_of vb.pvb_loc;
        };
      (match ok_payload (Attr.guarded_by attrs) with
      | Some lock -> Hashtbl.replace t.guarded_globals qname lock
      | None -> ())
  | _ -> ()

let register_type t decl =
  match decl.ptype_kind with
  | Ptype_record fields ->
      List.iter
        (fun ld ->
          match ok_payload (Attr.guarded_by (Attr.field_attrs ld)) with
          | Some lock -> Hashtbl.replace t.guarded_fields ld.pld_name.txt lock
          | None -> ())
        fields
  | _ -> ()

let rec register_structure t ~file ~modpath str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter (register_binding t ~file ~modpath) vbs
      | Pstr_type (_, decls) -> List.iter (register_type t) decls
      | Pstr_module mb -> register_module t ~file ~modpath mb
      | Pstr_recmodule mbs ->
          List.iter (register_module t ~file ~modpath) mbs
      | _ -> ())
    str

and register_module t ~file ~modpath mb =
  match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
  | Some name, Pmod_structure str ->
      register_structure t ~file ~modpath:(modpath @ [ name ]) str
  | Some name, Pmod_constraint ({ pmod_desc = Pmod_structure str; _ }, _) ->
      register_structure t ~file ~modpath:(modpath @ [ name ]) str
  | _ -> ()

let build (files : Source.file list) =
  let t = create () in
  List.iter
    (fun (f : Source.file) ->
      register_structure t ~file:f.path ~modpath:[ f.modname ] f.str)
    files;
  t

(* Resolve [parts] (a flattened Longident) as seen from inside module
   path [modpath]. *)
let resolve_in tbl ~modpath parts =
  let rec try_prefixes prefix =
    let key = String.concat "." (prefix @ parts) in
    match Hashtbl.find_opt tbl key with
    | Some v -> Some v
    | None -> (
        match List.rev prefix with
        | [] -> None
        | _ :: outer_rev -> try_prefixes (List.rev outer_rev))
  in
  match try_prefixes modpath with
  | Some v -> Some v
  | None ->
      (* cross-library references: drop leading path components *)
      let rec drop = function
        | [] -> None
        | _ :: tl as parts -> (
            match Hashtbl.find_opt tbl (String.concat "." parts) with
            | Some v -> Some v
            | None -> drop tl)
      in
      drop parts

let find_fn t ~modpath parts = resolve_in t.fns ~modpath parts
let guarded_global t ~modpath parts = resolve_in t.guarded_globals ~modpath parts
let guarded_field t name = Hashtbl.find_opt t.guarded_fields name
