(** Evaluation-cache handle used by the core game/episode plumbing:
    either a single-owner {!Evalcache} (lock-free, the PR-4 discipline)
    or the shared {!Stripedcache} visible to every pool worker.  Both
    flavours preserve bitwise episode results; they differ only in who
    sees whose entries. *)

type t = Local of Evalcache.t | Striped of Stripedcache.t

val local : capacity:int -> t
val striped : stripes:int -> capacity:int -> t

val find : t -> version:int -> Evalcache.key -> (float array * float) option
val store : t -> version:int -> Evalcache.key -> float array * float -> unit
val stats : t -> Evalcache.stats
val hit_rate : t -> float
val clear : t -> unit
