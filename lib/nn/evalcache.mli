(** LRU transposition cache for {!Pvnet} evaluations.

    Maps [(state hash, next vertex)] to the network's [(priors, value)],
    evicting least-recently-used entries beyond [capacity].  Entries are
    stamped with the {!Pvnet.version} of the weights that produced them;
    {!find} treats a version mismatch as a miss, so an entry computed
    before an optimizer step is never served afterwards — no explicit
    invalidation is needed.

    Not thread-safe: use one cache per (worker, net replica), like the
    per-replica message caches (see DESIGN.md).  Hits return copies of
    the stored priors, so callers may mutate them freely.  Because keys
    ({!Zhash} over the exact move sequence of one graph instance) only
    collide for bitwise-identical states under identical weights, search
    results with and without a cache are bit-identical. *)

type t

type key = int * int
(** [(state hash, next vertex)]. *)

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val find : t -> version:int -> key -> (float array * float) option
(** A hit only when present {e and} stamped with [version]; counts into
    {!hits}/{!misses} accordingly. *)

val store : t -> version:int -> key -> float array * float -> unit
(** Insert or overwrite (also refreshing recency and the stamp). *)

val capacity : t -> int
val length : t -> int
val hits : t -> int
val misses : t -> int

type stats = { hits : int; misses : int; evictions : int; size : int }
(** Counter snapshot: lifetime hits/misses/LRU-evictions plus the current
    entry count. *)

val stats : t -> stats

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val clear : t -> unit
(** Drop all entries and reset the counters. *)
