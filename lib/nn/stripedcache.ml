(* Shared evaluation cache striped over N mutex-guarded Evalcache shards.

   The per-(worker, net) caches of PR 4 kept lookups lock-free but made a
   position solved by worker 0 invisible to worker 5.  Striping restores
   sharing at a bounded cost: the shard index is a mix of the (already
   splitmix64-quality) state hash with the next-vertex index, so
   contention spreads across [stripes] independent locks and two workers
   only serialize when they touch the same stripe at the same moment.

   Determinism: a cache hit returns bitwise the same (priors, value) the
   network would produce (entries are version-stamped, equal versions
   mean bitwise-equal weights, and batched evaluation is row-independent)
   — so *sharing* entries across workers cannot perturb episode results,
   only the hit/miss counters.  That is what lets this replace the
   per-worker arrays without weakening the bit-identical-runs contract. *)

type t = {
  shards : (Mutex.t * Evalcache.t) array;
  mask : int; (* stripes - 1; stripes is a power of two *)
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ~stripes ~capacity =
  if stripes <= 0 then invalid_arg "Stripedcache.create: stripes <= 0";
  if capacity <= 0 then invalid_arg "Stripedcache.create: capacity <= 0";
  let stripes = next_pow2 stripes 1 in
  let per = max 1 (capacity / stripes) in
  {
    shards =
      Array.init stripes (fun _ ->
          (Mutex.create (), Evalcache.create ~capacity:per));
    mask = stripes - 1;
  }

let stripes c = Array.length c.shards

(* Mix next into the state hash so keys differing only in the next
   vertex spread across shards; odd 62-bit multipliers keep the stripe
   index well distributed even when state hashes share low bits. *)
let shard_of c ((hash, next) : Evalcache.key) =
  let h = (hash lxor (next * 0x2545F4914F6CDD1D)) * 0x3C79AC492BA7B653 in
  (h lsr 40) land c.mask

let find c ~version key =
  let m, shard = c.shards.(shard_of c key) in
  Mutex.lock m;
  let r = Evalcache.find shard ~version key in
  Mutex.unlock m;
  r

let store c ~version key v =
  let m, shard = c.shards.(shard_of c key) in
  Mutex.lock m;
  Evalcache.store shard ~version key v;
  Mutex.unlock m

let stripe_stats c =
  Array.map
    (fun (m, shard) ->
      Mutex.lock m;
      let s = Evalcache.stats shard in
      Mutex.unlock m;
      s)
    c.shards

let stats c =
  Array.fold_left
    (fun (acc : Evalcache.stats) (s : Evalcache.stats) ->
      {
        Evalcache.hits = acc.hits + s.hits;
        misses = acc.misses + s.misses;
        evictions = acc.evictions + s.evictions;
        size = acc.size + s.size;
      })
    { Evalcache.hits = 0; misses = 0; evictions = 0; size = 0 }
    (stripe_stats c)

let hit_rate c =
  let s = stats c in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let clear c =
  Array.iter
    (fun (m, shard) ->
      Mutex.lock m;
      Evalcache.clear shard;
      Mutex.unlock m)
    c.shards
