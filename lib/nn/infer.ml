(* Cross-worker dynamic-batching inference service.

   Each pool worker's MCTS wave is small (≤ config.batch leaves), so
   per-worker [Pvnet.predict_prepared] calls run the trunk/heads GEMMs
   far below the batch sizes where the tiled kernel pays off.  The
   service coalesces waves across workers: a submitter enqueues its
   prepared leaves as a *ticket* and blocks; whichever submitter first
   observes a full batch (>= max_batch rows pending) or an expired wait
   (head ticket older than wait_us) takes the floating *server* role,
   drains a version-uniform FIFO prefix of tickets, runs ONE coalesced
   [predict_prepared] over the concatenated leaves, and hands each
   ticket its result slice.  No domain is dedicated to serving — with
   j workers all j keep doing search work, and the role costs exactly
   the predict the worker was going to block on anyway.

   Determinism.  Every output row of the batched trunk/heads GEMMs and
   per-row LayerNorms depends only on its own input row, so a leaf's
   (priors, value) is bitwise identical whether it is evaluated alone,
   inside its own worker's wave, or sandwiched between strangers' leaves
   in a coalesced batch.  Batch *composition* is scheduling-dependent;
   batch results are not — which is why episodes stay bit-exact for
   every (workers, max_batch, wait_us) setting (test_serve locks this
   down).

   Which net runs the batch: tickets carry the submitter's replica and
   its weights version; a batch only groups tickets of equal version,
   and equal versions imply bitwise-equal weights (the Pvnet.version
   contract), so the server simply uses the first ticket's net.  That
   replica's owning worker is blocked in [submit] while its ticket is in
   flight, so the server has exclusive use of its scratch arena.

   Blocking.  OCaml's Condition has no timed wait, so a submitter that
   cannot yet serve sleeps in short slices (cpu_relax first, then
   microsleeps bounded by the remaining wait) and rechecks; once a
   server is active, waiters park in Condition.wait and are woken by the
   server's broadcast.  An exception in the server marks every ticket of
   the batch failed and each submitter re-raises it — first-exn
   semantics like Par.Pool. *)

type ticket = {
  t_preps : Pvnet.prepared array;
  t_version : int;
  t_net : Pvnet.t;
  t_enqueued : float;
  mutable t_result : (float array * float) array option
      [@guarded_by "mutex"];
  mutable t_failed : (exn * Printexc.raw_backtrace) option
      [@guarded_by "mutex"];
}

type stats = {
  batches : int;
  rows : int;
  full_flushes : int;
  timeout_flushes : int;
  max_batch_rows : int;
  waits : int;
  wait_p50_us : float;
  wait_p99_us : float;
}

(* Queue-wait histogram: log2 µs buckets — bucket i counts tickets that
   waited in [2^i, 2^(i+1)) µs between enqueue and batch drain (bucket 0
   also absorbs sub-µs waits).  Quantiles are read back as a bucket's
   upper bound, so a reported p99 means "99% of tickets waited at most
   this long" to within the 2x bucket resolution. *)
let wait_buckets = 32

let wait_bucket_of_us us =
  if us < 2.0 then 0
  else begin
    let b = ref 0 and v = ref (int_of_float us) in
    while !v > 1 do
      incr b;
      v := !v lsr 1
    done;
    min (wait_buckets - 1) !b
  end

let wait_quantile hist total q =
  if total = 0 then 0.0
  else begin
    let rank = Float.max 1.0 (Float.round (q *. float_of_int total)) in
    let acc = ref 0 and b = ref 0 in
    (try
       for i = 0 to wait_buckets - 1 do
         acc := !acc + hist.(i);
         if float_of_int !acc >= rank then begin
           b := i;
           raise Exit
         end
       done;
       b := wait_buckets - 1
     with Exit -> ());
    ldexp 1.0 (!b + 1)
  end

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : ticket Queue.t;
  max_batch : int;
  wait_s : float;
  workers : int;
  mutable pending_rows : int [@guarded_by "mutex"];
  mutable serving : bool [@guarded_by "mutex"];
  mutable s_batches : int [@guarded_by "mutex"];
  mutable s_rows : int [@guarded_by "mutex"];
  mutable s_full : int [@guarded_by "mutex"];
  mutable s_timeout : int [@guarded_by "mutex"];
  mutable s_max_rows : int [@guarded_by "mutex"];
  mutable s_waits : int [@guarded_by "mutex"];
  s_wait_hist : int array; [@guarded_by "mutex"]
  mutable poison : exn option [@guarded_by "mutex"];
      (* test hook: raised once inside the server's result-distribution
         phase (lock held) to prove the failure path cannot wedge *)
}

let create ?(max_batch = 32) ?(wait_us = 200) ~workers () =
  if max_batch <= 0 then invalid_arg "Infer.create: max_batch <= 0";
  if wait_us < 0 then invalid_arg "Infer.create: wait_us < 0";
  if workers <= 0 then invalid_arg "Infer.create: workers <= 0";
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    max_batch;
    wait_s = float_of_int wait_us /. 1e6;
    workers;
    pending_rows = 0;
    serving = false;
    s_batches = 0;
    s_rows = 0;
    s_full = 0;
    s_timeout = 0;
    s_max_rows = 0;
    s_waits = 0;
    s_wait_hist = Array.make wait_buckets 0;
    poison = None;
  }

let poison_next_batch_for_test t e =
  Mutex.lock t.mutex;
  t.poison <- Some e;
  Mutex.unlock t.mutex

let workers t = t.workers
let max_batch t = t.max_batch

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      batches = t.s_batches;
      rows = t.s_rows;
      full_flushes = t.s_full;
      timeout_flushes = t.s_timeout;
      max_batch_rows = t.s_max_rows;
      waits = t.s_waits;
      wait_p50_us = wait_quantile t.s_wait_hist t.s_waits 0.50;
      wait_p99_us = wait_quantile t.s_wait_hist t.s_waits 0.99;
    }
  in
  Mutex.unlock t.mutex;
  s

(* Called with the lock held.  Pops the FIFO prefix of tickets sharing
   the head's weights version, up to [max_batch] rows — always at least
   the head ticket, even if it alone exceeds the budget (a submitter's
   wave is never split). *)
let drain_batch t =
  let head = Queue.peek t.queue in
  let batch = ref [] and brows = ref 0 in
  let continue_ = ref true in
  let now = Unix.gettimeofday () in
  while !continue_ do
    match Queue.peek_opt t.queue with
    | Some tk
      when tk.t_version = head.t_version
           && (!brows = 0 || !brows + Array.length tk.t_preps <= t.max_batch)
      ->
        ignore (Queue.pop t.queue);
        let wait_us = (now -. tk.t_enqueued) *. 1e6 in
        let b = wait_bucket_of_us wait_us in
        t.s_wait_hist.(b) <- t.s_wait_hist.(b) + 1;
        t.s_waits <- t.s_waits + 1;
        batch := tk :: !batch;
        brows := !brows + Array.length tk.t_preps
    | _ -> continue_ := false
  done;
  t.pending_rows <- t.pending_rows - !brows;
  (List.rev !batch, !brows)
[@@requires_lock "mutex"]

(* Called with the lock held; returns with the lock held.  Runs one
   coalesced batch (the network call itself happens unlocked). *)
let serve t ~full =
  let batch, brows = drain_batch t in
  t.serving <- true;
  t.s_batches <- t.s_batches + 1;
  t.s_rows <- t.s_rows + brows;
  if full then t.s_full <- t.s_full + 1 else t.s_timeout <- t.s_timeout + 1;
  if brows > t.s_max_rows then t.s_max_rows <- brows;
  Mutex.unlock t.mutex;
  let outcome =
    try
      let all = Array.concat (List.map (fun tk -> tk.t_preps) batch) in
      let net = (List.hd batch).t_net in
      let results = Pvnet.predict_prepared net all in
      (* defend the distribution below: a forward that returns the wrong
         row count (a broken net/kernel) must fail the batch, not raise
         mid-distribution with the lock held *)
      if Array.length results <> brows then
        failwith
          (Printf.sprintf
             "Infer: forward returned %d rows for a %d-row batch"
             (Array.length results) brows);
      Ok results
    with e -> Error (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock t.mutex;
  (* From here to the broadcast, nothing may escape: an exception raised
     with the lock held (and [serving] still set) would park every other
     submitter in [Condition.wait] forever — the daemon-wedging failure
     mode the poison-injection regression test exercises.  Any exception
     in the distribution phase fans out to every ticket of the batch not
     yet released, exactly like a forward failure. *)
  (try
     (match t.poison with
     | Some e ->
         t.poison <- None;
         raise e
     | None -> ());
     match outcome with
     | Ok results ->
         let off = ref 0 in
         List.iter
           (fun tk ->
             let n = Array.length tk.t_preps in
             tk.t_result <- Some (Array.sub results !off n);
             off := !off + n)
           batch
     | Error err -> List.iter (fun tk -> tk.t_failed <- Some err) batch
   with e ->
     let err = (e, Printexc.get_raw_backtrace ()) in
     List.iter
       (fun tk ->
         if tk.t_result = None && tk.t_failed = None then
           tk.t_failed <- Some err)
       batch);
  t.serving <- false;
  Condition.broadcast t.cond
[@@requires_lock "mutex"]

let submit t ~net preps =
  if Array.length preps = 0 then [||]
  else if t.workers <= 1 then
    (* degenerate service: no other worker will ever coalesce with us,
       so skip the queue and run the batch directly *)
    Pvnet.predict_prepared net preps
  else begin
    let tk =
      {
        t_preps = preps;
        t_version = Pvnet.version net;
        t_net = net;
        t_enqueued = Unix.gettimeofday ();
        t_result = None;
        t_failed = None;
      }
    in
    Mutex.lock t.mutex;
    Queue.add tk t.queue;
    t.pending_rows <- t.pending_rows + Array.length preps;
    let rec loop spin =
      match tk.t_result with
      | Some r ->
          Mutex.unlock t.mutex;
          r
      | None -> (
          match tk.t_failed with
          | Some (e, bt) ->
              Mutex.unlock t.mutex;
              Printexc.raise_with_backtrace e bt
          | None ->
              if t.serving then begin
                (* a server is running; it broadcasts when done *)
                Condition.wait t.cond t.mutex;
                loop spin
              end
              else begin
                let full = t.pending_rows >= t.max_batch in
                let now = Unix.gettimeofday () in
                let timed_out =
                  match Queue.peek_opt t.queue with
                  | Some head -> now -. head.t_enqueued >= t.wait_s
                  | None -> false
                in
                if (full || timed_out) && not (Queue.is_empty t.queue) then begin
                  serve t ~full;
                  loop spin
                end
                else begin
                  (* nothing to serve yet: sleep a slice bounded by the
                     remaining wait, then recheck (no timed Condition
                     wait in OCaml); a newly arriving submitter that
                     fills the batch will serve it itself *)
                  let remaining =
                    match Queue.peek_opt t.queue with
                    | Some head -> t.wait_s -. (now -. head.t_enqueued)
                    | None -> t.wait_s
                  in
                  Mutex.unlock t.mutex;
                  if spin < 32 then Domain.cpu_relax ()
                  else Unix.sleepf (Float.max 1e-6 (Float.min remaining 5e-5));
                  Mutex.lock t.mutex;
                  loop (spin + 1)
                end
              end)
    in
    loop 0
  end
