(* Gradient accumulation across a mini-batch: samples are processed one at
   a time (graphs have varying sizes, so there is no tensor batching) and
   their per-sample gradients summed here. *)

type t = {
  table : (int, Var.t * Tensor.t) Hashtbl.t;
  mutable order : int list;  (* first-seen var ids, reversed *)
  mutable samples : int;
}

let create () = { table = Hashtbl.create 32; order = []; samples = 0 }

let add t var g =
  match Hashtbl.find_opt t.table var.Var.id with
  | Some (_, acc) -> Tensor.add_into acc g
  | None ->
      Hashtbl.replace t.table var.Var.id (var, Tensor.copy g);
      t.order <- var.Var.id :: t.order

(* Collect every parameter gradient the context accumulated. *)
let add_from_ctx t ctx vars =
  List.iter
    (fun v ->
      match Ad.var_grad ctx v with Some g -> add t v g | None -> ())
    vars;
  t.samples <- t.samples + 1

(* First-seen order, NOT hashtable order: callers like [Adam.step] fold
   over the list (global-norm clipping), and float summation order must
   not depend on how process-global var ids happen to hash — a net
   reloaded from a checkpoint gets fresh ids and must train
   bit-identically to the original. *)
let to_list ?(average = true) t =
  let s =
    if average && t.samples > 0 then 1.0 /. float_of_int t.samples else 1.0
  in
  List.fold_left
    (fun acc id ->
      let var, g = Hashtbl.find t.table id in
      (var, Tensor.scale s g) :: acc)
    [] t.order

(* Parameter order, for callers that hold the canonical [params] list:
   stronger than first-seen order because it does not depend on which
   sample happened to touch a parameter first — the serial and
   data-parallel training steps both emit this order, which is what
   makes them bit-identical. *)
let to_list_ordered ?(average = true) t ~vars =
  let s =
    if average && t.samples > 0 then 1.0 /. float_of_int t.samples else 1.0
  in
  List.filter_map
    (fun (v : Var.t) ->
      Option.map
        (fun (_, g) -> (v, Tensor.scale s g))
        (Hashtbl.find_opt t.table v.Var.id))
    vars

let sample_count t = t.samples
