(** Shared, thread-safe evaluation cache: N mutex-guarded {!Evalcache}
    shards, the shard chosen by a mix of the state hash with the next
    vertex.  A position evaluated by one pool worker is a hit for every
    other worker; since a hit returns bitwise what the network would
    compute under the same weights version, sharing affects only the
    hit/miss counters, never episode results. *)

type t

val create : stripes:int -> capacity:int -> t
(** [stripes] is rounded up to a power of two; [capacity] is the total
    entry budget, split evenly across shards (at least 1 each).
    @raise Invalid_argument if either is [<= 0]. *)

val stripes : t -> int
(** Actual shard count after rounding. *)

val find : t -> version:int -> Evalcache.key -> (float array * float) option
val store : t -> version:int -> Evalcache.key -> float array * float -> unit

val stripe_stats : t -> Evalcache.stats array
(** Per-shard counter snapshots, in shard order. *)

val stats : t -> Evalcache.stats
(** Sum over shards. *)

val hit_rate : t -> float
val clear : t -> unit
