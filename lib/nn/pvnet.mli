(** The policy/value network for PBQP states (paper §III-D, §IV-D).

    Architecture, following the paper: GCN layers whose messages are
    modulated by the edge cost matrices (Fig. 4), a residual MLP trunk
    (the paper's "ResNet"), and two heads — P-Net (softmax over the [m]
    colors of the next vertex) and V-Net (tanh scalar in [-1, 1]).

    Cost encoding: an entry [c] of a cost vector or matrix enters the
    network as [1 / (1 + c / cost_scale)] (so ∞ → 0): a soft
    availability / compatibility weight whose rational decay keeps the
    wide dynamic range of spill weights distinguishable.  Hidden GCN features live in ℝ^m exactly as in
    the paper, so the [m × m] edge matrices apply to messages directly.
    The readout for heads is [h_next ‖ mean_v h_v ‖ φ(C_next)] — the
    paper's μ concatenation is not fixed-size across graphs, so we use the
    next-vertex embedding plus a global mean pool (see DESIGN.md).

    Deviation from the paper: normalization layers are LayerNorm, not
    BatchNorm (training is per-sample; see DESIGN.md). *)

type config = {
  m : int;  (** number of colors; the network is specific to it *)
  gcn_layers : int;
  trunk_width : int;
  trunk_blocks : int;
  cost_scale : float;  (** the [s] in [1/(1 + c/s)] *)
}

val default_config : m:int -> config
(** 2 GCN layers, width 32, 2 residual blocks, cost_scale 10. *)

type t

val create : rng:Random.State.t -> config -> t
val config : t -> config
val params : t -> Var.t list
val param_count : t -> int

val sync : src:t -> dst:t -> unit
(** Copy all parameter values from [src] into [dst].
    @raise Invalid_argument if the two nets have different configs. *)

val clone : t -> t
(** A deep copy with independent parameters. *)

val copy_into : src:t -> dst:t -> unit
(** {!sync} that is a physical no-op when [src == dst]: the idiom for
    refreshing long-lived per-worker replicas (of which worker 0's may
    alias the source net) without re-allocating clones. *)

val version : t -> int
(** The weights-identity stamp that versions {!Evalcache} entries.
    Globally fresh at {!create}/{!load} and after every optimizer step
    ({!train_batch}/{!train_batch_parallel} bump it); {!sync} copies the
    source's stamp along with the weights.  Equal stamps therefore imply
    bitwise-equal weights — a cache entry stamped with a stale version is
    never served. *)

val bump_version : t -> unit
(** Install a globally fresh stamp — for callers that mutate parameters
    directly (the training functions call this themselves). *)

(** {1 Inference} *)

val predict : t -> Pbqp.Graph.t -> next:int -> float array * float
(** [(priors, value)] for coloring vertex [next] of a reduced-graph state.
    Priors are a distribution over the [m] colors with zero mass on
    colors whose vertex cost is ∞ (all-zero if the vertex is a dead end).
    @raise Invalid_argument if the graph's [m] differs from the net's or
    [next] is not a live vertex. *)

val predict_batch :
  t -> (Pbqp.Graph.t * int) list -> (float array * float) array
(** [predict_batch t [(g, next); ...]] is {!predict} applied to every
    state, in order — but the per-vertex GCN transforms and the
    trunk/heads run as batch GEMMs over row-stacked features, without
    building an autodiff tape.  The arithmetic is replicated operation
    for operation, so results are bit-identical to the scalar path (the
    test suite asserts agreement to ≤1e-9; in practice the floats are
    equal).  Duplicate states and states from different graphs may mix
    in one batch.  [[]] maps to [[||]]. *)

type prepared
(** One state's contribution to a batched forward, captured while its
    graph was live: the GCN readout row and a private copy of the next
    vertex's cost vector (the output mask). *)

val prepare : ?quantized:bool -> t -> Pbqp.Graph.t -> next:int -> prepared
(** The per-state stage of {!predict_batch}.  Safe to call on a graph
    that is subsequently mutated (the incremental-search pattern: seek
    the shared trail graph to each leaf, prepare, move on).

    [quantized] selects the int8 serving path for this state's batch; it
    defaults to [quantized_serve t && quantized_certified t], so
    ordinary callers follow the net's serving mode and silently fall
    back to float while no certificate is held.  Passing
    [~quantized:true] explicitly requests the int8 path — then
    {!predict_prepared} raises unless the certificate is current.
    @raise Invalid_argument as {!predict}. *)

val predict_prepared :
  ?scratch:bool -> t -> prepared array -> (float array * float) array
(** The batched trunk/heads stage: [predict_batch] is literally [prepare]
    per state followed by this, so mixing the two APIs is bit-identical.

    With [scratch] (default [true]) the pass runs in the net's reusable
    scratch arena — rows blitted into a persistent stack, GEMMs via
    [matmul_into] into preallocated buffers, activations in place,
    transposed weights memoized per {!version} — allocating nothing in
    steady state beyond the result arrays.  Every output row of the
    batched GEMMs and the per-row LayerNorms depends only on its own
    input row, and the in-place steps compute the same IEEE expressions
    in the same order as the allocating path, so results are bit-exact
    for every batch composition and for both [scratch] settings
    ([~scratch:false] preserves the allocating path as a baseline).

    Not thread-safe (the arena, like the message cache, belongs to the
    replica's owning worker) — but safe for {!Infer}'s floating server
    to run on a submitter's replica, because the owner blocks for the
    result while its ticket is in flight. *)

(** {1 Quantized serving (int8), behind the certification gate}

    Inference-only int8 serving: per-row int8 weight quantization
    memoized per {!version}, an int8×int8→int GEMM with float rescale
    and the same fused epilogues as the float path (LayerNorm, softmax
    and tanh stay float).  The path is {e gated}: batched inference only
    runs it while a certificate issued by [Check.Quantcert] matches the
    current weights version; any weight mutation (optimizer step, load)
    invalidates the certificate. *)

val set_quantized_serve : t -> bool -> unit
(** Ask batched inference to serve through the int8 path whenever a
    current certificate is held ({!prepare}'s default consults this). *)

val quantized_serve : t -> bool

val quantized_certified : t -> bool
(** Whether the held certificate matches the current weights version.
    {!sync} copies the certificate with the weights (equal versions
    imply bitwise-equal weights, so it transfers to replicas). *)

val mark_quantized_certified : t -> unit
(** Install a certificate for the current weights version.  Reserved for
    the certification harness ([Check.Quantcert]) — do not call after
    eyeballing; the harness checks policy argmax agreement and value
    error bounds on seeded graphs first. *)

val clear_quantized_certificate : t -> unit

val predict_prepared_quantized_unsafe :
  t -> prepared array -> (float array * float) array
(** The int8 forward {e without} the certification gate, regardless of
    how the batch was prepared — the entry point the certification
    harness (and benchmarks) use to measure the path before a
    certificate exists.  Never call from serving code. *)

val corrupt_quantized_for_test : t -> unit
(** Test hook: tamper the memoized int8 policy-head weights in place
    (the memo's version stamp still matches, so the corruption persists
    until the next weight mutation).  Exists to prove the certification
    gate rejects corrupted quantized weights. *)

val eval_count : t -> int
(** Lifetime number of leaf evaluations this net (replica) has served:
    {!predict} counts 1, the batched paths count their rows. *)

val reset_eval_count : t -> unit

(** {1 Training} *)

type sample = {
  graph : Pbqp.Graph.t;  (** reduced state (a private snapshot) *)
  next : int;  (** the vertex the action colors *)
  policy : float array;  (** MCTS visit distribution π (length m) *)
  value : float;  (** final reward z ∈ {-1, 0, +1} *)
}

val loss : t -> Ad.ctx -> sample -> Ad.t
(** Scalar node: cross-entropy(policy, P-Net) + (value − V-Net)².  The L2
    term of the paper's loss is applied as decoupled weight decay in
    {!Adam}. *)

val train_batch : t -> Adam.t -> sample list -> float
(** One optimizer step on the mean gradient of the batch; returns the mean
    loss.  Gradients reach Adam in [params] order (via
    [Grads.to_list_ordered]), the reduction order {!train_batch_parallel}
    reproduces. *)

val train_batch_parallel :
  ?weights:float array ->
  pool:Par.Pool.t -> replicas:t array -> t -> Adam.t -> sample list -> float
(** {!train_batch} with per-sample forward/backward passes sharded
    across the pool.  [replicas] must hold one net per pool worker
    (worker 0's may alias [t]); each is refreshed from [t] via
    {!copy_into} before the shard runs, so the same array can live for a
    whole training run.  Per-sample gradients are merged on the calling
    domain in ascending sample order and handed to Adam in [params]
    order — exactly the serial reduction — so the step is bit-identical
    to {!train_batch} for any pool size.

    [weights] (default all ones) scales each sample's loss and gradient
    contribution before the merge — the distributed learner's staleness
    down-weighting.  An all-ones array short-circuits to the unweighted
    path, so passing explicit 1.0s is bit-identical to omitting the
    argument.
    @raise Invalid_argument if [Array.length replicas] differs from the
    pool size, a replica's config differs from [t]'s, or [weights] and
    the batch have different lengths. *)

(** {1 Persistence} *)

val save : t -> string -> unit
val load : string -> t
(** @raise Invalid_argument on malformed or mismatched checkpoint files. *)

(** {1 Binary snapshots (parameter broadcast)}

    The compact wire form the distributed learner broadcasts to actors
    after optimizer steps: raw IEEE-754 parameter bits (bitwise
    round-trip by construction, ~3x smaller than the text checkpoint),
    excluding Adam moments — actors only run inference. *)

val snapshot : t -> string
(** Serialize config + all parameters. *)

val load_snapshot : t -> string -> unit
(** Overwrite [t]'s parameters from a snapshot and install a fresh
    {!version} stamp.  [load_snapshot t (snapshot src)] makes [t]'s
    parameters bitwise-equal to [src]'s.
    @raise Invalid_argument on malformed snapshots or config mismatch. *)

val snapshot_of_string : string -> t
(** A fresh net built from a snapshot (actor-side first receive). *)
