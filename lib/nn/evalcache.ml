(* LRU transposition cache for network evaluations.

   Keys are (state hash, next vertex); entries carry the weights version
   (Pvnet.version) they were computed under, and a lookup only hits when
   the stored version equals the caller's — a stale entry is a miss and
   is overwritten by the following store.  Single-domain by design: the
   training loop keeps one cache per (pool worker, net replica), so no
   locking is needed (mirroring the per-worker msg_cache discipline). *)

type key = int * int

type entry = {
  key : key;
  mutable priors : float array;
  mutable value : float;
  mutable version : int;
  mutable newer : entry option;
  mutable older : entry option;
}

type t = {
  capacity : int;
  table : (key, entry) Hashtbl.t;
  mutable newest : entry option;
  mutable oldest : entry option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Evalcache.create: capacity <= 0";
  {
    capacity;
    table = Hashtbl.create (min capacity 4096);
    newest = None;
    oldest = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity c = c.capacity
let length c = Hashtbl.length c.table
let hits c = c.hits
let misses c = c.misses

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0.0 else float_of_int c.hits /. float_of_int total

let unlink c e =
  (match e.newer with
  | Some n -> n.older <- e.older
  | None -> c.newest <- e.older);
  (match e.older with
  | Some o -> o.newer <- e.newer
  | None -> c.oldest <- e.newer);
  e.newer <- None;
  e.older <- None

let push_newest c e =
  e.older <- c.newest;
  e.newer <- None;
  (match c.newest with
  | Some n -> n.newer <- Some e
  | None -> c.oldest <- Some e);
  c.newest <- Some e

let find c ~version key =
  match Hashtbl.find_opt c.table key with
  | Some e when e.version = version ->
      c.hits <- c.hits + 1;
      unlink c e;
      push_newest c e;
      Some (Array.copy e.priors, e.value)
  | _ ->
      c.misses <- c.misses + 1;
      None

let store c ~version key (priors, value) =
  match Hashtbl.find_opt c.table key with
  | Some e ->
      e.priors <- Array.copy priors;
      e.value <- value;
      e.version <- version;
      unlink c e;
      push_newest c e
  | None ->
      let e =
        { key; priors = Array.copy priors; value; version;
          newer = None; older = None }
      in
      Hashtbl.replace c.table key e;
      push_newest c e;
      if Hashtbl.length c.table > c.capacity then
        match c.oldest with
        | Some old ->
            unlink c old;
            Hashtbl.remove c.table old.key;
            c.evictions <- c.evictions + 1
        | None -> ()

let clear c =
  Hashtbl.reset c.table;
  c.newest <- None;
  c.oldest <- None;
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0

type stats = { hits : int; misses : int; evictions : int; size : int }

let stats (c : t) =
  {
    hits = c.hits;
    misses = c.misses;
    evictions = c.evictions;
    size = Hashtbl.length c.table;
  }
