(* Evaluation-cache handle: either a single-domain LRU (owned by one
   worker, lock-free) or the shared striped cache.  Callers in core
   dispatch through this so the episode/backtracking/search plumbing is
   oblivious to which flavour the training loop picked. *)

type t = Local of Evalcache.t | Striped of Stripedcache.t

let local ~capacity = Local (Evalcache.create ~capacity)
let striped ~stripes ~capacity = Striped (Stripedcache.create ~stripes ~capacity)

let find t ~version key =
  match t with
  | Local c -> Evalcache.find c ~version key
  | Striped c -> Stripedcache.find c ~version key

let store t ~version key v =
  match t with
  | Local c -> Evalcache.store c ~version key v
  | Striped c -> Stripedcache.store c ~version key v

let stats = function
  | Local c -> Evalcache.stats c
  | Striped c -> Stripedcache.stats c

let hit_rate = function
  | Local c -> Evalcache.hit_rate c
  | Striped c -> Stripedcache.hit_rate c

let clear = function
  | Local c -> Evalcache.clear c
  | Striped c -> Stripedcache.clear c
