(** Cross-worker dynamic-batching inference service.

    Pool workers submit their wave of {!Pvnet.prepared} leaves as a
    ticket and block; whichever submitter first observes a full batch
    ([max_batch] pending rows) or an expired wait ([wait_us] since the
    head ticket was enqueued) takes the {e floating server role}: it
    drains a version-uniform FIFO prefix of tickets, runs one coalesced
    {!Pvnet.predict_prepared} over the concatenated leaves, and
    distributes result slices back through the tickets.  No domain is
    dedicated to serving.

    Per-sample results are bitwise identical to a direct
    [predict_prepared] call regardless of batch composition (row
    independence of the batched GEMMs/LayerNorms), so episodes stay
    bit-exact for every (workers, batch, wait) schedule.  An exception
    raised while serving a batch is re-raised in every submitter whose
    ticket was in it (first-exn semantics, like [Par.Pool]). *)

type t

val create : ?max_batch:int -> ?wait_us:int -> workers:int -> unit -> t
(** [max_batch] (default 32) is the row budget per coalesced call — a
    single oversized wave still runs whole, never split.  [wait_us]
    (default 200) bounds how long a partial batch may age before some
    submitter flushes it.  [workers] is the number of domains that will
    submit; with [workers <= 1] {!submit} degenerates to a direct
    [predict_prepared] with no queue or locking.
    @raise Invalid_argument on non-positive [max_batch]/[workers] or
    negative [wait_us]. *)

val submit : t -> net:Pvnet.t -> Pvnet.prepared array -> (float array * float) array
(** Evaluate the caller's leaves, possibly coalesced with other
    workers' tickets.  Blocks until the result is available; the caller
    may end up serving the batch itself.  [net] must be the calling
    worker's own replica (the server may run the batch on it — safe,
    because the owner is parked right here while its ticket is in
    flight).  Returns [[||]] for [[||]]. *)

val workers : t -> int
val max_batch : t -> int

type stats = {
  batches : int;  (** coalesced [predict_prepared] calls served *)
  rows : int;  (** total leaf rows across all batches *)
  full_flushes : int;  (** batches triggered by a full row budget *)
  timeout_flushes : int;  (** batches triggered by [wait_us] expiry *)
  max_batch_rows : int;  (** largest coalesced batch observed *)
  waits : int;  (** tickets drained (one queue wait each) *)
  wait_p50_us : float;
      (** median µs a ticket waited between enqueue and its batch firing,
          read from a log2-bucket histogram as the containing bucket's
          upper bound (2x resolution) *)
  wait_p99_us : float;  (** 99th-percentile queue wait, same resolution *)
}

val stats : t -> stats
(** Counter snapshot (taken under the service lock).  Note: the direct
    [workers <= 1] fast path bypasses the queue and counts nothing. *)

val poison_next_batch_for_test : t -> exn -> unit
(** Test hook: make the next coalesced batch raise [exn] inside the
    server's result-distribution phase — after the forward, with the
    queue lock held.  Exists to prove the failure path can never wedge
    the service: the exception must fan out to every ticket of the batch
    (parked waiters included), the server flag must clear, and later
    submissions must succeed.  Never call from serving code. *)
