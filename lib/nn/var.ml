type t = { id : int; name : string; value : Tensor.t }

(* Atomic: per-worker net replicas are built on worker domains. *)
let counter = Atomic.make 0

let create ~name value =
  { id = Atomic.fetch_and_add counter 1 + 1; name; value }

let numel v = Tensor.numel v.value

let pp ppf v =
  Format.fprintf ppf "%s#%d%a" v.name v.id
    (fun ppf t ->
      Format.fprintf ppf "[%s]"
        (String.concat "x" (Array.to_list (Array.map string_of_int (Tensor.shape t)))))
    v.value
