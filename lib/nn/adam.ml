(* Adam optimizer (Kingma & Ba) with decoupled weight decay.

   The paper's loss carries an L2 regularization term c·|θ|²; applying it
   as decoupled decay in the update (AdamW) is the standard equivalent
   that avoids pushing the regularizer through autodiff. *)

type config = {
  lr : float;
  beta1 : float;
  beta2 : float;
  eps : float;
  weight_decay : float;
  grad_clip : float;
      (* global-norm clipping threshold; non-positive disables it *)
}

let default_config =
  { lr = 1e-3; beta1 = 0.9; beta2 = 0.999; eps = 1e-8; weight_decay = 1e-4;
    grad_clip = 5.0 }

type state = { m : Tensor.t; v : Tensor.t }
type t = { config : config; table : (int, state) Hashtbl.t; mutable step : int }

let create config = { config; table = Hashtbl.create 32; step = 0 }

let state_for t (var : Var.t) =
  match Hashtbl.find_opt t.table var.Var.id with
  | Some s -> s
  | None ->
      let s =
        {
          m = Tensor.zeros (Tensor.shape var.Var.value);
          v = Tensor.zeros (Tensor.shape var.Var.value);
        }
      in
      Hashtbl.replace t.table var.Var.id s;
      s

let step t grads =
  t.step <- t.step + 1;
  let c = t.config in
  (* global-norm gradient clipping, computed across the whole batch *)
  let grads =
    if c.grad_clip > 0.0 then begin
      let norm =
        sqrt
          (List.fold_left
             (fun acc (_, g) -> acc +. Tensor.l2norm_sq g)
             0.0 grads)
      in
      if norm > c.grad_clip then
        let s = c.grad_clip /. norm in
        List.map (fun (v, g) -> (v, Tensor.scale s g)) grads
      else grads
    end
    else grads
  in
  let bc1 = 1.0 -. (c.beta1 ** float_of_int t.step) in
  let bc2 = 1.0 -. (c.beta2 ** float_of_int t.step) in
  List.iter
    (fun ((var : Var.t), g) ->
      if not (Tensor.same_shape var.Var.value g) then
        invalid_arg "Adam.step: gradient shape mismatch";
      let s = state_for t var in
      let w = Tensor.data var.Var.value in
      let gd = Tensor.data g in
      let md = Tensor.data s.m in
      let vd = Tensor.data s.v in
      for i = 0 to Float.Array.length w - 1 do
        let gi = Float.Array.get gd i in
        let mi = (c.beta1 *. Float.Array.get md i) +. ((1.0 -. c.beta1) *. gi) in
        let vi =
          (c.beta2 *. Float.Array.get vd i) +. ((1.0 -. c.beta2) *. gi *. gi)
        in
        Float.Array.set md i mi;
        Float.Array.set vd i vi;
        let mhat = mi /. bc1 in
        let vhat = vi /. bc2 in
        let wi = Float.Array.get w i in
        Float.Array.set w i
          (wi
          -. (c.lr *. ((mhat /. (sqrt vhat +. c.eps)) +. (c.weight_decay *. wi))))
      done)
    grads

let steps_taken t = t.step

(* --- Persistence ------------------------------------------------------ *)

(* Moments are keyed by [Var.id] in memory, but ids come from a
   process-global counter and are not stable across runs — files key by
   the parameter *name* instead, and [load] rebinds them to the ids of
   the [params] passed in.  [%.17g] round-trips doubles exactly, so a
   resumed optimizer continues bit-identically. *)

let save t ~params path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "adam %d\n" t.step;
      List.iter
        (fun (var : Var.t) ->
          let s = state_for t var in
          let shape = Tensor.shape var.Var.value in
          Printf.fprintf oc "moment %s %s\n" var.Var.name
            (String.concat "x" (Array.to_list (Array.map string_of_int shape)));
          let dump tensor =
            let d = Tensor.data tensor in
            Float.Array.iteri
              (fun i x ->
                if i > 0 then output_char oc ' ';
                Printf.fprintf oc "%.17g" x)
              d;
            output_char oc '\n'
          in
          dump s.m;
          dump s.v)
        params)

let load t ~params path =
  let by_name = Hashtbl.create 32 in
  List.iter (fun (v : Var.t) -> Hashtbl.replace by_name v.Var.name v) params;
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line () =
        match In_channel.input_line ic with
        | Some l -> l
        | None -> invalid_arg "Adam.load: truncated file"
      in
      (match String.split_on_char ' ' (line ()) with
      | [ "adam"; step ] -> t.step <- int_of_string step
      | _ -> invalid_arg "Adam.load: bad header");
      let parse_row d values =
        let toks =
          String.split_on_char ' ' values |> List.filter (fun s -> s <> "")
        in
        if List.length toks <> Float.Array.length d then
          invalid_arg "Adam.load: value count mismatch";
        List.iteri (fun i s -> Float.Array.set d i (float_of_string s)) toks
      in
      try
        while true do
          match In_channel.input_line ic with
          | None -> raise Exit
          | Some l when String.trim l = "" -> ()
          | Some l -> (
              match String.split_on_char ' ' l with
              | [ "moment"; name; shape_s ] -> (
                  match Hashtbl.find_opt by_name name with
                  | None ->
                      invalid_arg
                        (Printf.sprintf "Adam.load: unknown param %s" name)
                  | Some var ->
                      let shape =
                        String.split_on_char 'x' shape_s
                        |> List.map int_of_string |> Array.of_list
                      in
                      if shape <> Tensor.shape var.Var.value then
                        invalid_arg
                          (Printf.sprintf "Adam.load: shape mismatch for %s"
                             name);
                      let s = state_for t var in
                      parse_row (Tensor.data s.m) (line ());
                      parse_row (Tensor.data s.v) (line ()))
              | _ -> invalid_arg "Adam.load: malformed line")
        done
      with Exit -> ())
