type t = {
  id : int;
  value : Tensor.t;
  mutable grad : Tensor.t option;
  parents : t array;
  bwd : Tensor.t -> unit;
      (* Given dL/d(this node), accumulate into the parents' grads. *)
}

type ctx = { memo : (int, t) Hashtbl.t }

let ctx () = { memo = Hashtbl.create 16 }
(* Atomic: tapes are built concurrently on worker domains; ids only need
   to be unique and monotone per tape, which a shared atomic preserves. *)
let counter = Atomic.make 0

let node value parents bwd =
  { id = Atomic.fetch_and_add counter 1 + 1; value; grad = None; parents; bwd }

let value n = n.value
let grad n = match n.grad with Some g -> g | None -> Tensor.zeros (Tensor.shape n.value)

let accum n g =
  match n.grad with
  | None -> n.grad <- Some (Tensor.copy g)
  | Some acc -> Tensor.add_into acc g

let const v = node v [||] (fun _ -> ())
let scalar x = const (Tensor.scalar x)

let of_var ctx (v : Var.t) =
  match Hashtbl.find_opt ctx.memo v.Var.id with
  | Some n -> n
  | None ->
      let n = const v.Var.value in
      Hashtbl.replace ctx.memo v.Var.id n;
      n

let var_grad ctx (v : Var.t) =
  Option.bind (Hashtbl.find_opt ctx.memo v.Var.id) (fun n -> n.grad)

let binop f dfa dfb a b =
  node (f a.value b.value)
    [| a; b |]
    (fun g ->
      accum a (dfa g);
      accum b (dfb g))

let add a b = binop Tensor.add (fun g -> g) (fun g -> g) a b
let sub a b = binop Tensor.sub (fun g -> g) (fun g -> Tensor.scale (-1.0) g) a b

let mul a b =
  binop Tensor.mul
    (fun g -> Tensor.mul g b.value)
    (fun g -> Tensor.mul g a.value)
    a b

let scale s a = node (Tensor.scale s a.value) [| a |] (fun g -> accum a (Tensor.scale s g))
let neg a = scale (-1.0) a

let relu a =
  node
    (Tensor.map (fun x -> if x > 0.0 then x else 0.0) a.value)
    [| a |]
    (fun g ->
      accum a (Tensor.map2 (fun gv x -> if x > 0.0 then gv else 0.0) g a.value))

let tanh_ a =
  let y = Tensor.map Float.tanh a.value in
  node y [| a |] (fun g ->
      accum a (Tensor.map2 (fun gv yv -> gv *. (1.0 -. (yv *. yv))) g y))

let mv m v =
  node (Tensor.mv m.value v.value)
    [| m; v |]
    (fun g ->
      accum m (Tensor.outer g v.value);
      accum v (Tensor.tmv m.value g))

let matmul a b =
  node (Tensor.matmul a.value b.value)
    [| a; b |]
    (fun g ->
      accum a (Tensor.matmul g (Tensor.transpose b.value));
      accum b (Tensor.matmul (Tensor.transpose a.value) g))

let sum a =
  node
    (Tensor.scalar (Tensor.sum a.value))
    [| a |]
    (fun g ->
      let gs = Tensor.get1 g 0 in
      accum a (Tensor.full (Tensor.shape a.value) gs))

let mean a =
  let n = float_of_int (Tensor.numel a.value) in
  node
    (Tensor.scalar (Tensor.mean a.value))
    [| a |]
    (fun g ->
      let gs = Tensor.get1 g 0 /. n in
      accum a (Tensor.full (Tensor.shape a.value) gs))

let concat1 xs =
  match xs with
  | [] -> invalid_arg "Ad.concat1: empty"
  | xs ->
      let parents = Array.of_list xs in
      node
        (Tensor.concat1 (List.map (fun x -> x.value) xs))
        parents
        (fun g ->
          let gdata = Tensor.data g in
          let pos = ref 0 in
          Array.iter
            (fun p ->
              let k = Tensor.numel p.value in
              accum p (Tensor.of_float_array (Float.Array.sub gdata !pos k));
              pos := !pos + k)
            parents)

let mean_list xs =
  match xs with
  | [] -> invalid_arg "Ad.mean_list: empty"
  | x0 :: _ ->
      let parents = Array.of_list xs in
      let k = float_of_int (Array.length parents) in
      let acc = Tensor.zeros (Tensor.shape x0.value) in
      Array.iter (fun p -> Tensor.add_into acc p.value) parents;
      node (Tensor.scale (1.0 /. k) acc) parents (fun g ->
          let gp = Tensor.scale (1.0 /. k) g in
          Array.iter (fun p -> accum p gp) parents)

let softmax logits =
  let m = Tensor.max_value logits in
  let e = Tensor.map (fun x -> exp (x -. m)) logits in
  let z = Tensor.sum e in
  Tensor.scale (1.0 /. z) e

let softmax_xent logits target =
  if not (Tensor.same_shape logits.value target) then
    invalid_arg "Ad.softmax_xent: shape mismatch";
  let p = softmax logits.value in
  let loss = ref 0.0 in
  let pd = Tensor.data p and td = Tensor.data target in
  Float.Array.iteri
    (fun i ti ->
      if ti > 0.0 then
        loss := !loss -. (ti *. log (Float.max (Float.Array.get pd i) 1e-30)))
    td;
  node (Tensor.scalar !loss) [| logits |] (fun g ->
      let gs = Tensor.get1 g 0 in
      accum logits (Tensor.scale gs (Tensor.sub p target)))

let layernorm ?(eps = 1e-5) ~gain ~bias x =
  let n = Tensor.numel x.value in
  let nf = float_of_int n in
  let mu = Tensor.mean x.value in
  let var =
    Float.Array.fold_left
      (fun acc v -> acc +. ((v -. mu) *. (v -. mu)))
      0.0 (Tensor.data x.value)
    /. nf
  in
  let sigma = sqrt (var +. eps) in
  let xhat = Tensor.map (fun v -> (v -. mu) /. sigma) x.value in
  let y = Tensor.add (Tensor.mul gain.value xhat) bias.value in
  node y
    [| x; gain; bias |]
    (fun g ->
      accum bias g;
      accum gain (Tensor.mul g xhat);
      (* dL/dxhat = g * gain; then the standard layernorm jacobian:
         dx = (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat)) / sigma *)
      let dxhat = Tensor.mul g gain.value in
      let m1 = Tensor.mean dxhat in
      let m2 = Tensor.mean (Tensor.mul dxhat xhat) in
      let dx =
        Tensor.map2
          (fun dxh xh -> (dxh -. m1 -. (xh *. m2)) /. sigma)
          dxhat xhat
      in
      accum x dx)

let backward root =
  if Tensor.numel root.value <> 1 then
    invalid_arg "Ad.backward: root must be scalar";
  (* Reverse post-order over parent edges: every consumer is processed
     before the node it feeds, so grads are complete when bwd runs. *)
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec dfs n =
    if not (Hashtbl.mem visited n.id) then begin
      Hashtbl.replace visited n.id ();
      Array.iter dfs n.parents;
      order := n :: !order
    end
  in
  dfs root;
  root.grad <- Some (Tensor.scalar 1.0);
  List.iter (fun n -> match n.grad with Some g -> n.bwd g | None -> ()) !order
