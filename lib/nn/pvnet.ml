open Pbqp

type config = {
  m : int;
  gcn_layers : int;
  trunk_width : int;
  trunk_blocks : int;
  cost_scale : float;
}

let default_config ~m =
  { m; gcn_layers = 2; trunk_width = 32; trunk_blocks = 2; cost_scale = 10.0 }

type gcn_layer = { w_self : Layer.Linear.t; w_msg : Layer.Linear.t }

(* Scratch buffers for one batch size of the coalesced trunk/heads
   forward.  Tensors carry exact shapes (matmul_into validates them), so
   buffers are keyed by the batch row count rather than grown in place;
   the set of distinct batch sizes a search produces is small (wave
   sizes, service batch sizes), and the table is reset if it ever grows
   past a bound, giving geometric-growth behaviour without views. *)
type buffers = {
  sx0 : Tensor.t;  (* B × 3m   stacked readout rows *)
  sx : Tensor.t;  (* B × w    trunk activations, updated in place *)
  sb1 : Tensor.t;  (* B × w    layernorm / fc2 scratch *)
  sb2 : Tensor.t;  (* B × w    fc1 scratch *)
  slogits : Tensor.t;  (* B × m *)
  svalues : Tensor.t;  (* B × 1 *)
}

type arena = {
  bufs : (int, buffers) Hashtbl.t;  (* batch rows ↦ buffer set *)
  packs : (string, Tensor.packed) Hashtbl.t;
      (* param name ↦ packed transposed weight panels (the B operand of
         the fused GEMM), valid for [pack_version] *)
  mutable pack_version : int;
  qpacks : (string, Tensor.Q.qmat) Hashtbl.t;
      (* param name ↦ per-row int8 quantized weights for the serving
         path, valid for [qpack_version] *)
  mutable qpack_version : int;
  qscr : (int, Tensor.Q.scratch) Hashtbl.t;
      (* batch rows ↦ activation-quantization scratch, built lazily on
         first quantized use of a batch size *)
}

type t = {
  config : config;
  msg_cache : (int, Tensor.t) Hashtbl.t;
      (* message matrices memoized by Mat.id — matrices are immutable and
         shared across MCTS states, so this stays hot through a search *)
  arena : arena;
      (* per-replica like msg_cache: the batched forward reuses these
         buffers call over call, so steady-state inference allocates only
         the per-sample result arrays *)
  mutable version : int;
      (* weights-identity stamp for the evaluation cache: every weight
         mutation (an optimizer step, a load) installs a globally fresh
         stamp, and [sync] copies the stamp with the weights — so equal
         stamps imply bitwise-equal weights, across replicas included *)
  mutable evals : int;
      (* lifetime count of leaf evaluations served by this replica
         (scalar predicts count 1, batched predicts count their rows) *)
  mutable quant_serve : bool;
      (* serve batched inference through the int8 path when certified *)
  mutable quant_certified : int;
      (* weights version the int8 path was certified for (-1: none);
         [sync] copies it — equal versions imply bitwise-equal weights,
         so a certificate transfers with the weights *)
  gcn : gcn_layer array;
  trunk_in : Layer.Linear.t;
  trunk : Layer.Residual.t array;
  trunk_ln : Layer.Layernorm.t;
  policy_head : Layer.Linear.t;
  value_head : Layer.Linear.t;
}

(* Atomic: replicas are refreshed from worker domains' results while the
   trainer mints new stamps. *)
let next_version =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1 + 1

let create ~rng config =
  if config.m <= 0 then invalid_arg "Pvnet.create: m <= 0";
  if config.gcn_layers < 1 then invalid_arg "Pvnet.create: gcn_layers < 1";
  let m = config.m in
  {
    config;
    msg_cache = Hashtbl.create 1024;
    arena =
      {
        bufs = Hashtbl.create 8;
        packs = Hashtbl.create 8;
        pack_version = -1;
        qpacks = Hashtbl.create 8;
        qpack_version = -1;
        qscr = Hashtbl.create 4;
      };
    version = next_version ();
    evals = 0;
    quant_serve = false;
    quant_certified = -1;
    gcn =
      Array.init config.gcn_layers (fun l ->
          let name k = Printf.sprintf "gcn%d.%s" l k in
          {
            w_self =
              Layer.Linear.create ~rng ~name:(name "self") ~in_dim:m ~out_dim:m;
            w_msg =
              Layer.Linear.create ~rng ~name:(name "msg") ~in_dim:m ~out_dim:m;
          });
    trunk_in =
      Layer.Linear.create ~rng ~name:"trunk.in" ~in_dim:(3 * m)
        ~out_dim:config.trunk_width;
    trunk =
      Array.init config.trunk_blocks (fun i ->
          Layer.Residual.create ~rng
            ~name:(Printf.sprintf "trunk.res%d" i)
            ~dim:config.trunk_width);
    trunk_ln = Layer.Layernorm.create ~name:"trunk.ln" ~dim:config.trunk_width;
    policy_head =
      Layer.Linear.create ~rng ~name:"policy" ~in_dim:config.trunk_width
        ~out_dim:m;
    value_head =
      Layer.Linear.create ~rng ~name:"value" ~in_dim:config.trunk_width
        ~out_dim:1;
  }

let config t = t.config

let params t =
  List.concat
    [
      Array.to_list t.gcn
      |> List.concat_map (fun l ->
             Layer.Linear.params l.w_self @ Layer.Linear.params l.w_msg);
      Layer.Linear.params t.trunk_in;
      Array.to_list t.trunk |> List.concat_map Layer.Residual.params;
      Layer.Layernorm.params t.trunk_ln;
      Layer.Linear.params t.policy_head;
      Layer.Linear.params t.value_head;
    ]

let param_count t = List.fold_left (fun acc v -> acc + Var.numel v) 0 (params t)

let version t = t.version
let bump_version t = t.version <- next_version ()
let eval_count t = t.evals
let reset_eval_count t = t.evals <- 0

(* --- Quantized-serving mode ------------------------------------------ *)

let set_quantized_serve t on = t.quant_serve <- on
let quantized_serve t = t.quant_serve
let quantized_certified t = t.quant_certified = t.version

(* Called by the certification harness (Check.Quantcert) after the int8
   outputs passed the accuracy bounds for the current weights.  Any
   weight mutation bumps [version], invalidating the certificate. *)
let mark_quantized_certified t = t.quant_certified <- t.version
let clear_quantized_certificate t = t.quant_certified <- -1

let sync ~src ~dst =
  if src.config <> dst.config then invalid_arg "Pvnet.sync: config mismatch";
  List.iter2
    (fun (a : Var.t) (b : Var.t) ->
      if a.Var.name <> b.Var.name then invalid_arg "Pvnet.sync: param mismatch";
      Float.Array.blit (Tensor.data a.Var.value) 0 (Tensor.data b.Var.value) 0
        (Tensor.numel a.Var.value))
    (params src) (params dst);
  dst.version <- src.version;
  dst.quant_serve <- src.quant_serve;
  dst.quant_certified <- src.quant_certified

let clone t =
  let t' = create ~rng:(Random.State.make [| 0 |]) t.config in
  sync ~src:t ~dst:t';
  t'

(* Refresh a live replica in place instead of allocating a fresh clone;
   a physical no-op when [src] and [dst] are the same net (worker 0's
   replica aliases the real net). *)
let copy_into ~src ~dst = if src != dst then sync ~src ~dst

(* --- Feature encoding ------------------------------------------------ *)

(* Soft availability weight: 1 at cost 0, decaying rationally so that the
   wide dynamic range of spill weights (1 .. 10^3) stays distinguishable,
   and 0 for inadmissible (∞) entries. *)
let phi_cost scale c =
  if Cost.is_inf c then 0.0 else 1.0 /. (1.0 +. (Cost.to_float c /. scale))

let vertex_features t vec =
  Tensor.init1 t.config.m (fun i -> phi_cost t.config.cost_scale (Vec.get vec i))

(* Message matrix from u into v: [Graph.edge g v u] is already oriented
   with v's colors as rows and u's as columns, so [mv] maps u-space
   features into v-space.  Entries become soft compatibilities, scaled by
   1/m so message magnitudes stay bounded. *)
let message_matrix t mat =
  match Hashtbl.find_opt t.msg_cache (Mat.id mat) with
  | Some cached -> cached
  | None ->
      let m = t.config.m in
      let tensor =
        Tensor.init2 m m (fun i j ->
            phi_cost t.config.cost_scale (Mat.get mat i j) /. float_of_int m)
      in
      if Hashtbl.length t.msg_cache > 100_000 then Hashtbl.reset t.msg_cache;
      Hashtbl.replace t.msg_cache (Mat.id mat) tensor;
      tensor

(* --- Forward --------------------------------------------------------- *)

let forward t ctx g ~next =
  if Graph.m g <> t.config.m then invalid_arg "Pvnet.forward: m mismatch";
  if not (Graph.is_alive g next) then
    invalid_arg "Pvnet.forward: next vertex not alive";
  let verts = Graph.vertices g in
  let h = Hashtbl.create (List.length verts) in
  List.iter
    (fun u -> Hashtbl.replace h u (Ad.const (vertex_features t (Graph.cost g u))))
    verts;
  Array.iter
    (fun layer ->
      let h' = Hashtbl.create (Hashtbl.length h) in
      List.iter
        (fun v ->
          let self = Layer.Linear.forward ctx layer.w_self (Hashtbl.find h v) in
          let neighbors = Graph.neighbors g v in
          let combined =
            match neighbors with
            | [] -> self
            | ns ->
                let msgs =
                  List.map
                    (fun u ->
                      let mvu = Option.get (Graph.edge_ref g v u) in
                      Ad.mv (Ad.const (message_matrix t mvu)) (Hashtbl.find h u))
                    ns
                in
                Ad.add self
                  (Layer.Linear.forward ctx layer.w_msg (Ad.mean_list msgs))
          in
          Hashtbl.replace h' v (Ad.relu combined))
        verts;
      Hashtbl.reset h;
      List.iter (fun v -> Hashtbl.replace h v (Hashtbl.find h' v)) verts)
    t.gcn;
  let embeddings = List.map (fun v -> Hashtbl.find h v) verts in
  let global = Ad.mean_list embeddings in
  let read =
    Ad.concat1
      [
        Hashtbl.find h next;
        global;
        Ad.const (vertex_features t (Graph.cost g next));
      ]
  in
  let x = Ad.relu (Layer.Linear.forward ctx t.trunk_in read) in
  let x = Array.fold_left (fun x blk -> Layer.Residual.forward ctx blk x) x t.trunk in
  let x = Layer.Layernorm.forward ctx t.trunk_ln x in
  let logits = Layer.Linear.forward ctx t.policy_head x in
  let value = Ad.tanh_ (Layer.Linear.forward ctx t.value_head x) in
  (logits, value)

(* --- Inference ------------------------------------------------------- *)

let predict t g ~next =
  t.evals <- t.evals + 1;
  let ctx = Ad.ctx () in
  let logits, value = forward t ctx g ~next in
  let cost_vec = Graph.cost g next in
  let masked =
    Tensor.init1 t.config.m (fun i ->
        if Cost.is_inf (Vec.get cost_vec i) then neg_infinity
        else Tensor.get1 (Ad.value logits) i)
  in
  let priors =
    if Vec.is_all_inf cost_vec then Array.make t.config.m 0.0
    else Tensor.to_array1 (Ad.softmax masked)
  in
  (priors, Tensor.get1 (Ad.value value) 0)

(* --- Batched inference ------------------------------------------------ *)

(* The batched path re-implements the forward pass with plain tensors (no
   tape) and runs the per-vertex GCN transforms and the trunk/heads as
   batch GEMMs over row-stacked feature vectors.  Every operation
   reproduces the scalar pipeline's float arithmetic exactly: [matmul]
   accumulates each output row in the same ascending order as [Tensor.mv]
   (with operands commuted, which IEEE multiplication doesn't notice),
   and activations / LayerNorm are applied per row with the same
   expressions as their [Ad] counterparts.  [predict_batch] is therefore
   bit-identical to mapping [predict]; the equivalence property suite in
   test_nn locks this down. *)

let relu_t x = Tensor.map (fun v -> if v > 0.0 then v else 0.0) x

(* y ← y + 1b, per row *)
let add_bias_rows (lin : Layer.Linear.t) y =
  let r, c = Tensor.dims2 y in
  let yd = Tensor.data y and bd = Tensor.data lin.Layer.Linear.b.Var.value in
  for i = 0 to r - 1 do
    let base = i * c in
    for j = 0 to c - 1 do
      Float.Array.unsafe_set yd (base + j)
        (Float.Array.unsafe_get yd (base + j) +. Float.Array.unsafe_get bd j)
    done
  done
[@@hot]

(* rows(x) ↦ rows(x) Wᵀ + b, one GEMM for the whole stack *)
let linear_rows (lin : Layer.Linear.t) x =
  let y = Tensor.matmul x (Tensor.transpose lin.Layer.Linear.w.Var.value) in
  add_bias_rows lin y;
  y

(* Packed Wᵀ memoized per weights version: packing is pure data movement
   (panel cell (k, j) is exactly w.(j).(k)), so cached packs cannot
   perturb results; the table resets lazily whenever the version stamp
   moves (optimizer step, sync, load). *)
let packed_of t (lin : Layer.Linear.t) =
  let a = t.arena in
  if a.pack_version <> t.version then begin
    Hashtbl.reset a.packs;
    a.pack_version <- t.version
  end;
  let name = lin.Layer.Linear.w.Var.name in
  match Hashtbl.find_opt a.packs name with
  | Some p -> p
  | None ->
      let p = Tensor.pack_transposed lin.Layer.Linear.w.Var.value in
      Hashtbl.replace a.packs name p;
      p

(* Per-row int8 weights memoized per weights version, same lifecycle as
   the packed panels.  Inference-only: nothing downstream of a qpack
   feeds gradients. *)
let qpack_of t (lin : Layer.Linear.t) =
  let a = t.arena in
  if a.qpack_version <> t.version then begin
    Hashtbl.reset a.qpacks;
    a.qpack_version <- t.version
  end;
  let name = lin.Layer.Linear.w.Var.name in
  match Hashtbl.find_opt a.qpacks name with
  | Some q -> q
  | None ->
      let q = Tensor.Q.quantize_rows lin.Layer.Linear.w.Var.value in
      Hashtbl.replace a.qpacks name q;
      q

let quant_scratch t b =
  let a = t.arena in
  match Hashtbl.find_opt a.qscr b with
  | Some s -> s
  | None ->
      if Hashtbl.length a.qscr > 64 then Hashtbl.reset a.qscr;
      let cols = max (3 * t.config.m) t.config.trunk_width in
      let s = Tensor.Q.scratch ~rows:b ~cols in
      Hashtbl.replace a.qscr b s;
      s

(* [linear_rows] into a caller-owned buffer, with the epilogue (bias,
   optional residual add, optional relu) fused into the packed GEMM —
   one pass over memory, each output cell written once.  Bit-identical
   to [matmul_into] + [add_bias_rows] (+ separate residual/relu passes):
   same float operations, same order. *)
let linear_rows_into ?residual ?relu t (lin : Layer.Linear.t) x out =
  Tensor.matmul_packed_into ~bias:lin.Layer.Linear.b.Var.value ?residual ?relu
    out x (packed_of t lin)
[@@hot]

(* quantized counterpart of [linear_rows_into]: int8×int8→int GEMM over
   the memoized per-row-quantized weights with dynamic activation
   quantization, float rescale and the same fused epilogue *)
let linear_rows_quant_into ?residual ?relu t ~scratch:qs (lin : Layer.Linear.t)
    x out =
  Tensor.Q.matmul_qt_into ~bias:lin.Layer.Linear.b.Var.value ?residual ?relu
    ~scratch:qs out x (qpack_of t lin)
[@@hot]

(* Test hook: tamper the memoized int8 policy-head weights in place.
   The qpack's version stamp still matches, so the corruption survives
   until the next weight mutation — a subsequent certification pass sees
   a real int8-vs-float divergence and must reject the path. *)
let corrupt_quantized_for_test t =
  Tensor.Q.corrupt_for_test (qpack_of t t.policy_head)

(* per-row LayerNorm mirroring Ad.layernorm's arithmetic term for term;
   the [_into] form overwrites every cell of [out], so dirty scratch
   buffers are fine *)
let layernorm_rows_into (ln : Layer.Layernorm.t) x out =
  let eps = 1e-5 in
  let r, c = Tensor.dims2 x in
  let ro, co = Tensor.dims2 out in
  if ro <> r || co <> c then
    invalid_arg "Pvnet.layernorm_rows_into: shape mismatch";
  let nf = float_of_int c in
  let xd = Tensor.data x in
  let gd = Tensor.data ln.Layer.Layernorm.gain.Var.value in
  let bd = Tensor.data ln.Layer.Layernorm.bias.Var.value in
  let od = Tensor.data out in
  for i = 0 to r - 1 do
    let base = i * c in
    let s = ref 0.0 in
    for j = 0 to c - 1 do
      s := !s +. Float.Array.unsafe_get xd (base + j)
    done;
    let mu = !s /. nf in
    let acc = ref 0.0 in
    for j = 0 to c - 1 do
      let d = Float.Array.unsafe_get xd (base + j) -. mu in
      acc := !acc +. (d *. d)
    done;
    let var = !acc /. nf in
    let sigma = sqrt (var +. eps) in
    for j = 0 to c - 1 do
      let xhat = (Float.Array.unsafe_get xd (base + j) -. mu) /. sigma in
      Float.Array.unsafe_set od (base + j)
        ((Float.Array.unsafe_get gd j *. xhat) +. Float.Array.unsafe_get bd j)
    done
  done
[@@hot]

let layernorm_rows (ln : Layer.Layernorm.t) x =
  let r, c = Tensor.dims2 x in
  let out = Tensor.zeros [| r; c |] in
  layernorm_rows_into ln x out;
  out

let residual_rows (blk : Layer.Residual.t) x =
  let h = layernorm_rows blk.Layer.Residual.ln x in
  let h = relu_t (linear_rows blk.Layer.Residual.fc1 h) in
  let h = linear_rows blk.Layer.Residual.fc2 h in
  Tensor.add x h

(* Plain-tensor replica of the GCN + readout part of [forward]: one
   3m-dimensional readout row for one state. *)
let readout_row t g ~next =
  let m = t.config.m in
  let verts = Graph.vertices g in
  let h = Hashtbl.create (List.length verts) in
  List.iter
    (fun u -> Hashtbl.replace h u (vertex_features t (Graph.cost g u)))
    verts;
  Array.iter
    (fun layer ->
      (* self transform: all vertices in one GEMM (rows blitted straight
         from the feature table, no intermediate row list) *)
      let hmat = Tensor.zeros [| List.length verts; m |] in
      List.iteri (fun i v -> Tensor.blit_row_into (Hashtbl.find h v) i hmat) verts;
      let selfs = linear_rows layer.w_self hmat in
      (* neighbor messages: the mean replicates Ad.mean_list (accumulate
         in neighbor order, then scale), the transform is one GEMM over
         the vertices that have any *)
      let msgs =
        List.filter_map
          (fun v ->
            match Graph.neighbors g v with
            | [] -> None
            | ns ->
                let acc = Tensor.zeros [| m |] in
                List.iter
                  (fun u ->
                    let mvu = Option.get (Graph.edge_ref g v u) in
                    Tensor.add_into acc
                      (Tensor.mv (message_matrix t mvu) (Hashtbl.find h u)))
                  ns;
                Some (v, Tensor.scale (1.0 /. float_of_int (List.length ns)) acc))
          verts
      in
      let transformed = Hashtbl.create 16 in
      (match msgs with
      | [] -> ()
      | _ ->
          let tmat =
            linear_rows layer.w_msg (Tensor.stack_rows (List.map snd msgs))
          in
          List.iteri
            (fun i (v, _) -> Hashtbl.replace transformed v (Tensor.row tmat i))
            msgs);
      let h' = Hashtbl.create (List.length verts) in
      List.iteri
        (fun i v ->
          let self = Tensor.row selfs i in
          let combined =
            match Hashtbl.find_opt transformed v with
            | Some msg -> Tensor.add self msg
            | None -> self
          in
          Hashtbl.replace h' v (relu_t combined))
        verts;
      Hashtbl.reset h;
      List.iter (fun v -> Hashtbl.replace h v (Hashtbl.find h' v)) verts)
    t.gcn;
  let global =
    let k = float_of_int (List.length verts) in
    let acc = Tensor.zeros [| m |] in
    List.iter (fun v -> Tensor.add_into acc (Hashtbl.find h v)) verts;
    Tensor.scale (1.0 /. k) acc
  in
  Tensor.concat1
    [ Hashtbl.find h next; global; vertex_features t (Graph.cost g next) ]

(* A state's whole contribution to a batched forward, captured while its
   graph is live: the 3m readout row plus a private copy of the next
   vertex's cost vector (the post-trunk mask).  Incremental search states
   share one mutating graph, so a batch materializes each leaf in turn as
   a [prepared] and only then runs the trunk GEMMs. *)
type prepared = { p_row : Tensor.t; p_mask : Vec.t; p_quant : bool }

let prepare ?quantized t g ~next =
  if Graph.m g <> t.config.m then invalid_arg "Pvnet.prepare: m mismatch";
  if not (Graph.is_alive g next) then
    invalid_arg "Pvnet.prepare: next vertex not alive";
  let p_quant =
    match quantized with
    | Some q -> q
    | None -> t.quant_serve && t.quant_certified = t.version
  in
  { p_row = readout_row t g ~next; p_mask = Vec.copy (Graph.cost g next);
    p_quant }

(* Scratch buffers for a batch of [b] rows, reused call over call.  The
   64-size-class bound exists only to keep pathological callers from
   pinning unbounded memory; a search loop settles on a handful of batch
   sizes, so in steady state this allocates nothing. *)
let buffers t b =
  let a = t.arena in
  match Hashtbl.find_opt a.bufs b with
  | Some bu -> bu
  | None ->
      if Hashtbl.length a.bufs > 64 then Hashtbl.reset a.bufs;
      let m = t.config.m and w = t.config.trunk_width in
      let bu =
        {
          sx0 = Tensor.zeros [| b; 3 * m |];
          sx = Tensor.zeros [| b; w |];
          sb1 = Tensor.zeros [| b; w |];
          sb2 = Tensor.zeros [| b; w |];
          slogits = Tensor.zeros [| b; m |];
          svalues = Tensor.zeros [| b; 1 |];
        }
      in
      Hashtbl.replace a.bufs b bu;
      bu

(* The coalesced trunk/heads forward.  With [scratch] (the default) the
   whole pass runs in the replica's arena: rows are blitted into a
   reusable stack, every GEMM runs the packed fused kernel into a
   preallocated buffer (bias/residual/relu folded into the epilogue),
   and the packed weight panels are memoized per weights version — in
   steady state nothing is allocated but the per-sample result arrays.
   Every fused step computes the same IEEE expressions in the same order
   as the allocating path ([matmul] + bias + relu/residual as separate
   passes), so the two paths are bit-identical; [~scratch:false] keeps
   the allocating path alive as the benchmark baseline and the
   equivalence-test oracle. *)
(* The float scratch forward: rows already blitted into [bu.sx0]; every
   GEMM runs the packed fused kernel (bias, residual add and relu folded
   into the epilogue), so each layer makes one pass over memory and the
   whole trunk allocates nothing. *)
let scratch_forward t bu =
  linear_rows_into ~relu:true t t.trunk_in bu.sx0 bu.sx;
  Array.iter
    (fun (blk : Layer.Residual.t) ->
      layernorm_rows_into blk.Layer.Residual.ln bu.sx bu.sb1;
      linear_rows_into ~relu:true t blk.Layer.Residual.fc1 bu.sb1 bu.sb2;
      (* fc2 + bias + residual fused, written straight into sx (the
         out == residual aliasing the packed kernel supports) *)
      linear_rows_into ~residual:bu.sx t blk.Layer.Residual.fc2 bu.sb2 bu.sx)
    t.trunk;
  layernorm_rows_into t.trunk_ln bu.sx bu.sb1;
  linear_rows_into t t.policy_head bu.sb1 bu.slogits;
  linear_rows_into t t.value_head bu.sb1 bu.svalues

(* The int8 serving forward: same structure, every linear routed through
   the quantized GEMM.  LayerNorm, the residual carries and the heads'
   tanh/softmax stay float. *)
let quant_forward t bu n =
  let qs = quant_scratch t n in
  linear_rows_quant_into ~relu:true t ~scratch:qs t.trunk_in bu.sx0 bu.sx;
  Array.iter
    (fun (blk : Layer.Residual.t) ->
      layernorm_rows_into blk.Layer.Residual.ln bu.sx bu.sb1;
      linear_rows_quant_into ~relu:true t ~scratch:qs blk.Layer.Residual.fc1
        bu.sb1 bu.sb2;
      linear_rows_quant_into ~residual:bu.sx t ~scratch:qs
        blk.Layer.Residual.fc2 bu.sb2 bu.sx)
    t.trunk;
  layernorm_rows_into t.trunk_ln bu.sx bu.sb1;
  linear_rows_quant_into t ~scratch:qs t.policy_head bu.sb1 bu.slogits;
  linear_rows_quant_into t ~scratch:qs t.value_head bu.sb1 bu.svalues

(* Per-row mask + softmax straight out of the logits buffer into the
   result array, no intermediate tensors.  Reproduces [Ad.softmax] over
   the [init1]-masked row term for term: the max folds [Float.max] over
   the masked values in ascending order (inadmissible colors read as
   -inf), [exp (x -. mx)] per element, the normalizer sums in ascending
   order, and each prior is [(1.0 /. z) *. e] — so results stay
   bit-identical to the scalar [predict] epilogue. *)
let mask_results t preps logits values =
  let m = t.config.m in
  let ld = Tensor.data logits and vd = Tensor.data values in
  (if Tensor.dims2 logits <> (Array.length preps, m)
   || Tensor.dims2 values <> (Array.length preps, 1)
   then invalid_arg "Pvnet.mask_results: output buffer shape mismatch");
  Array.mapi
    (fun i p ->
      let cost_vec = p.p_mask in
      let base = i * m in
      let priors =
        if Vec.is_all_inf cost_vec then Array.make m 0.0
        else begin
          let masked c =
            if Cost.is_inf (Vec.get cost_vec c) then neg_infinity
            else Float.Array.unsafe_get ld (base + c)
          in
          let mx = ref neg_infinity in
          for c = 0 to m - 1 do
            mx := Float.max !mx (masked c)
          done;
          let e = Array.make m 0.0 in
          let z = ref 0.0 in
          for c = 0 to m - 1 do
            let v = exp (masked c -. !mx) in
            e.(c) <- v;
            z := !z +. v
          done;
          let inv = 1.0 /. !z in
          for c = 0 to m - 1 do
            e.(c) <- inv *. e.(c)
          done;
          e
        end
      in
      (priors, Float.tanh (Float.Array.unsafe_get vd i)))
    preps

let run_quant t preps =
  let n = Array.length preps in
  let bu = buffers t n in
  Array.iteri (fun i p -> Tensor.blit_row_into p.p_row i bu.sx0) preps;
  quant_forward t bu n;
  mask_results t preps bu.slogits bu.svalues

let predict_prepared_quantized_unsafe t preps =
  match preps with
  | [||] -> [||]
  | _ ->
      t.evals <- t.evals + Array.length preps;
      run_quant t preps

let predict_prepared ?(scratch = true) t preps =
  match preps with
  | [||] -> [||]
  | _ ->
      let n = Array.length preps in
      t.evals <- t.evals + n;
      let quantized = preps.(0).p_quant in
      Array.iter
        (fun p ->
          if p.p_quant <> quantized then
            invalid_arg "Pvnet.predict_prepared: mixed quantized batch")
        preps;
      if quantized then begin
        (* the certification gate: int8 serving requires a certificate
           for the exact current weights (Check.Quantcert issues it) *)
        if t.quant_certified <> t.version then
          invalid_arg
            "Pvnet.predict_prepared: quantized path not certified for \
             current weights";
        run_quant t preps
      end
      else if scratch then begin
        let bu = buffers t n in
        Array.iteri (fun i p -> Tensor.blit_row_into p.p_row i bu.sx0) preps;
        scratch_forward t bu;
        mask_results t preps bu.slogits bu.svalues
      end
      else begin
        let rows = Array.to_list (Array.map (fun p -> p.p_row) preps) in
        let x = relu_t (linear_rows t.trunk_in (Tensor.stack_rows rows)) in
        let x = Array.fold_left (fun x blk -> residual_rows blk x) x t.trunk in
        let x = layernorm_rows t.trunk_ln x in
        mask_results t preps (linear_rows t.policy_head x)
          (linear_rows t.value_head x)
      end

let predict_batch t states =
  match states with
  | [] -> [||]
  | _ ->
      List.iter
        (fun (g, _) ->
          if Graph.m g <> t.config.m then
            invalid_arg "Pvnet.predict_batch: m mismatch")
        states;
      predict_prepared t
        (Array.of_list (List.map (fun (g, next) -> prepare t g ~next) states))

(* --- Training -------------------------------------------------------- *)

type sample = {
  graph : Pbqp.Graph.t;
  next : int;
  policy : float array;
  value : float;
}

let loss t ctx sample =
  if Array.length sample.policy <> t.config.m then
    invalid_arg "Pvnet.loss: policy length mismatch";
  let logits, value = forward t ctx sample.graph ~next:sample.next in
  let cost_vec = Graph.cost sample.graph sample.next in
  (* Mask inadmissible colors with a large negative constant so the
     softmax assigns them no probability; the policy target is zero there,
     so no gradient flows to the mask. *)
  let mask =
    Ad.const
      (Tensor.init1 t.config.m (fun i ->
           if Cost.is_inf (Vec.get cost_vec i) then -1e9 else 0.0))
  in
  let xent =
    Ad.softmax_xent (Ad.add logits mask) (Tensor.of_array1 sample.policy)
  in
  let d = Ad.sub value (Ad.scalar sample.value) in
  Ad.add xent (Ad.mul d d)

let train_batch t opt samples =
  match samples with
  | [] -> 0.0
  | _ ->
      let grads = Grads.create () in
      let total = ref 0.0 in
      let vars = params t in
      List.iter
        (fun s ->
          let ctx = Ad.ctx () in
          let l = loss t ctx s in
          Ad.backward l;
          total := !total +. Tensor.get1 (Ad.value l) 0;
          Grads.add_from_ctx grads ctx vars)
        samples;
      Adam.step opt (Grads.to_list_ordered grads ~vars);
      bump_version t;
      !total /. float_of_int (List.length samples)

(* Data-parallel training step.  Each sample's forward/backward is an
   independent pool task running on a per-worker replica (forward is not
   thread-safe: the tape-free msg_cache is a plain Hashtbl); the merge
   on the submitting domain then replays exactly the serial reduction —
   gradients combined per parameter in ascending sample order (copy then
   add_into, like [Grads.add]), losses summed in sample order, the grads
   list handed to Adam in [params] order — so the updated weights are
   bit-identical to [train_batch] for any pool size. *)
let train_batch_parallel ?weights ~pool ~replicas t opt samples =
  match samples with
  | [] -> 0.0
  | _ ->
      let nw = Par.Pool.size pool in
      if Array.length replicas <> nw then
        invalid_arg "Pvnet.train_batch_parallel: replicas/pool size mismatch";
      (* Stale-sample down-weighting (distributed learner): sample [i]'s
         loss and gradient are scaled by [weights.(i)] before the merge.
         An all-ones array short-circuits to the unweighted path, whose
         bitwise behaviour is locked down by test_par — the distributed
         N=1 run leans on that identity. *)
      let weights =
        match weights with
        | Some ws when Array.exists (fun w -> w <> 1.0) ws ->
            if Array.length ws <> List.length samples then
              invalid_arg "Pvnet.train_batch_parallel: weights/samples mismatch";
            Some ws
        | _ -> None
      in
      Array.iter (fun r -> copy_into ~src:t ~dst:r) replicas;
      let rparams = Array.map (fun r -> Array.of_list (params r)) replicas in
      let samples = Array.of_list samples in
      let results =
        Par.Pool.map pool samples ~f:(fun ~worker s ->
            let net = replicas.(worker) in
            let ctx = Ad.ctx () in
            let l = loss net ctx s in
            Ad.backward l;
            let ps = rparams.(worker) in
            let gs = ref [] in
            for j = Array.length ps - 1 downto 0 do
              match Ad.var_grad ctx ps.(j) with
              | Some g -> gs := (j, g) :: !gs
              | None -> ()
            done;
            (Tensor.get1 (Ad.value l) 0, !gs))
      in
      let vars = Array.of_list (params t) in
      let acc = Array.make (Array.length vars) None in
      let total = ref 0.0 in
      Array.iteri
        (fun i (l, gs) ->
          let w = match weights with None -> 1.0 | Some ws -> ws.(i) in
          total := !total +. (w *. l);
          List.iter
            (fun (j, g) ->
              let g = match weights with None -> g | Some _ -> Tensor.scale w g in
              match acc.(j) with
              | None -> acc.(j) <- Some (Tensor.copy g)
              | Some a -> Tensor.add_into a g)
            gs)
        results;
      let n = Array.length samples in
      let s = 1.0 /. float_of_int n in
      let grads = ref [] in
      for j = Array.length vars - 1 downto 0 do
        match acc.(j) with
        | Some a -> grads := (vars.(j), Tensor.scale s a) :: !grads
        | None -> ()
      done;
      Adam.step opt !grads;
      bump_version t;
      !total /. float_of_int n

(* --- Persistence ------------------------------------------------------ *)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let c = t.config in
      Printf.fprintf oc "pvnet %d %d %d %d %.17g\n" c.m c.gcn_layers
        c.trunk_width c.trunk_blocks c.cost_scale;
      List.iter
        (fun (v : Var.t) ->
          let shape = Tensor.shape v.Var.value in
          Printf.fprintf oc "param %s %s\n" v.Var.name
            (String.concat "x" (Array.to_list (Array.map string_of_int shape)));
          let d = Tensor.data v.Var.value in
          Float.Array.iteri
            (fun i x ->
              if i > 0 then output_char oc ' ';
              Printf.fprintf oc "%.17g" x)
            d;
          output_char oc '\n')
        (params t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line () =
        match In_channel.input_line ic with
        | Some l -> l
        | None -> invalid_arg "Pvnet.load: truncated file"
      in
      let header = String.split_on_char ' ' (line ()) in
      let t =
        match header with
        | [ "pvnet"; m; gl; tw; tb; cs ] ->
            let config =
              {
                m = int_of_string m;
                gcn_layers = int_of_string gl;
                trunk_width = int_of_string tw;
                trunk_blocks = int_of_string tb;
                cost_scale = float_of_string cs;
              }
            in
            create ~rng:(Random.State.make [| 0 |]) config
        | _ -> invalid_arg "Pvnet.load: bad header"
      in
      let by_name = Hashtbl.create 32 in
      List.iter (fun (v : Var.t) -> Hashtbl.replace by_name v.Var.name v) (params t);
      (try
         while true do
           match In_channel.input_line ic with
           | None -> raise Exit
           | Some l when String.trim l = "" -> ()
           | Some l -> (
               match String.split_on_char ' ' l with
               | [ "param"; name; shape_s ] -> (
                   let values = line () in
                   match Hashtbl.find_opt by_name name with
                   | None ->
                       invalid_arg
                         (Printf.sprintf "Pvnet.load: unknown param %s" name)
                   | Some var ->
                       let shape =
                         String.split_on_char 'x' shape_s
                         |> List.map int_of_string |> Array.of_list
                       in
                       if shape <> Tensor.shape var.Var.value then
                         invalid_arg
                           (Printf.sprintf "Pvnet.load: shape mismatch for %s"
                              name);
                       let d = Tensor.data var.Var.value in
                       let toks =
                         String.split_on_char ' ' values
                         |> List.filter (fun s -> s <> "")
                       in
                       if List.length toks <> Float.Array.length d then
                         invalid_arg
                           (Printf.sprintf "Pvnet.load: value count for %s" name);
                       List.iteri
                         (fun i s -> Float.Array.set d i (float_of_string s))
                         toks)
               | _ -> invalid_arg "Pvnet.load: malformed line")
         done
       with Exit -> ());
      bump_version t;
      t)

(* --- Compact binary snapshots (parameter broadcast) ------------------- *)

(* The distributed learner broadcasts weights to actor processes after
   every optimizer step; the text checkpoint above renders ~%.17g per
   float (≈25 bytes), the snapshot stores raw IEEE-754 bits (8 bytes)
   and round-trips bitwise by construction.  Layout: one text header
   line, then per parameter a text line [p <name> <shape> <numel>]
   followed by numel little-endian float64 words and a newline.  Adam
   moments are deliberately excluded — actors only run inference. *)

let snapshot t =
  let b = Buffer.create 65536 in
  let c = t.config in
  Buffer.add_string b
    (Printf.sprintf "pvnet-bin1 %d %d %d %d %.17g\n" c.m c.gcn_layers
       c.trunk_width c.trunk_blocks c.cost_scale);
  List.iter
    (fun (v : Var.t) ->
      let shape = Tensor.shape v.Var.value in
      let d = Tensor.data v.Var.value in
      let n = Float.Array.length d in
      Buffer.add_string b
        (Printf.sprintf "p %s %s %d\n" v.Var.name
           (String.concat "x" (Array.to_list (Array.map string_of_int shape)))
           n);
      let raw = Bytes.create (8 * n) in
      for i = 0 to n - 1 do
        Bytes.set_int64_le raw (8 * i) (Int64.bits_of_float (Float.Array.get d i))
      done;
      Buffer.add_bytes b raw;
      Buffer.add_char b '\n')
    (params t);
  Buffer.contents b

(* Cursor-based parse over the snapshot string (it mixes text lines with
   raw float words, so a line-oriented reader cannot be reused). *)
let snapshot_header s =
  let fail msg = invalid_arg ("Pvnet.load_snapshot: " ^ msg) in
  let nl = try String.index s '\n' with Not_found -> fail "truncated header" in
  let config =
    match String.split_on_char ' ' (String.sub s 0 nl) with
    | [ "pvnet-bin1"; m; gl; tw; tb; cs ] -> (
        try
          {
            m = int_of_string m;
            gcn_layers = int_of_string gl;
            trunk_width = int_of_string tw;
            trunk_blocks = int_of_string tb;
            cost_scale = float_of_string cs;
          }
        with _ -> fail "malformed header")
    | _ -> fail "bad magic (expected pvnet-bin1)"
  in
  (config, nl + 1)

let load_snapshot t s =
  let fail msg = invalid_arg ("Pvnet.load_snapshot: " ^ msg) in
  let config, start = snapshot_header s in
  if config <> t.config then fail "config mismatch";
  let by_name = Hashtbl.create 32 in
  List.iter (fun (v : Var.t) -> Hashtbl.replace by_name v.Var.name v) (params t);
  let len = String.length s in
  let pos = ref start in
  let seen = ref 0 in
  while !pos < len do
    let nl =
      try String.index_from s !pos '\n' with Not_found -> fail "truncated entry"
    in
    let line = String.sub s !pos (nl - !pos) in
    pos := nl + 1;
    match String.split_on_char ' ' line with
    | [ "p"; name; shape_s; numel_s ] ->
        let numel =
          match int_of_string_opt numel_s with
          | Some n when n >= 0 -> n
          | _ -> fail "malformed numel"
        in
        let var =
          match Hashtbl.find_opt by_name name with
          | Some v -> v
          | None -> fail (Printf.sprintf "unknown param %s" name)
        in
        let shape =
          try
            String.split_on_char 'x' shape_s
            |> List.map int_of_string |> Array.of_list
          with _ -> fail "malformed shape"
        in
        if shape <> Tensor.shape var.Var.value then
          fail (Printf.sprintf "shape mismatch for %s" name);
        let d = Tensor.data var.Var.value in
        if numel <> Float.Array.length d then
          fail (Printf.sprintf "numel mismatch for %s" name);
        if !pos + (8 * numel) + 1 > len then fail "truncated values";
        let raw = Bytes.unsafe_of_string s in
        for i = 0 to numel - 1 do
          Float.Array.set d i
            (Int64.float_of_bits (Bytes.get_int64_le raw (!pos + (8 * i))))
        done;
        pos := !pos + (8 * numel);
        if s.[!pos] <> '\n' then fail "missing entry terminator";
        incr pos;
        incr seen
    | [ "" ] -> () (* tolerate a trailing blank line *)
    | _ -> fail "malformed entry line"
  done;
  if !seen <> List.length (params t) then fail "missing parameters";
  bump_version t

let snapshot_of_string s =
  let config, _ = snapshot_header s in
  let t = create ~rng:(Random.State.make [| 0 |]) config in
  load_snapshot t s;
  t
