open Pbqp

type stats = { steps : int }

let solve g0 =
  let g = Graph.copy g0 in
  let cap = Graph.capacity g in
  let verts = Graph.vertices g in
  let nverts = List.length verts in
  let assigned = Array.make cap Solution.unassigned in
  let steps = ref 0 in
  (* most-constrained unassigned vertex on the current vectors; ties to
     the smallest id ([verts] is increasing) *)
  let pick () =
    let best = ref (-1) and best_lib = ref max_int in
    List.iter
      (fun u ->
        if assigned.(u) = Solution.unassigned then begin
          let l = Vec.liberty (Graph.cost g u) in
          if l < !best_lib then begin
            best := u;
            best_lib := l
          end
        end)
      verts;
    !best
  in
  let rec loop remaining =
    if remaining = 0 then true
    else begin
      let u = pick () in
      let vu = Graph.cost g u in
      if Vec.is_all_inf vu then false
      else begin
        incr steps;
        let c = Vec.argmin vu in
        assigned.(u) <- c;
        List.iter
          (fun v ->
            if assigned.(v) = Solution.unassigned then
              let muv = Option.get (Graph.edge_ref g u v) in
              Graph.add_to_cost g v (Mat.row muv c))
          (Graph.neighbors g u);
        loop (remaining - 1)
      end
    end
  in
  let ok = loop nverts in
  let stats = { steps = !steps } in
  if not ok then (None, stats)
  else
    let sol = Solution.of_array assigned in
    let cost = Solution.cost g0 sol in
    if Cost.is_inf cost then (None, stats) else (Some (sol, cost), stats)
