(** Exact branch-and-bound PBQP solver.

    Proves optimality (or infeasibility) on small instances — practical to
    roughly 30 residual vertices — and degrades gracefully on larger ones
    through an explicit node/time budget with a {!Timeout} outcome that
    still carries the best incumbent found.

    Search design:
    - {e Reduction reuse}: the equivalence-preserving R0/R1/R2 reductions
      ({!Scholz.reduce_exact}) strip the easy periphery first; the
      branch-and-bound runs only on the residual hard core and the
      periphery is reconstructed exactly ({!Scholz.complete}).
    - {e Branching}: most-constrained vertex first — at every node the
      unassigned vertex with the fewest admissible colors in its current
      (propagated) cost vector is branched on, ties to the smallest id;
      its colors are tried cheapest-first.
    - {e Propagation}: assigning color [c] to [u] folds row [c] of each
      incident matrix into the unassigned neighbors' cost vectors (with a
      saved-vector undo trail), so the running sum of selected entries
      telescopes to Equation 1 exactly.
    - {e Bounding}: an admissible completion bound — each unassigned
      vertex contributes [min_c (vec(c) + Σ rowmin_e(c))] over the
      unassigned–unassigned edges it owns (each edge owned by its
      smaller-id endpoint; [rowmin_e(c)] is the row minimum of the edge
      matrix), which never exceeds the true completion cost.  A node is
      pruned when accumulated + bound ≥ incumbent.  The bound is
      admissible for costs of {e any} sign — unlike a bare prefix-cost
      prune, it stays sound on graphs with negative matrix entries (the
      register allocator's coalescing credits).

    The search is deterministic: no randomness, fixed tie-breaks, and the
    node budget is counted identically on every run, so equal inputs and
    budgets give bit-equal outcomes (including timeouts). *)

type outcome =
  | Optimal of Pbqp.Solution.t * Pbqp.Cost.t
      (** Proven optimum (complete search within budget). *)
  | Infeasible  (** Proven: no finite-cost assignment exists. *)
  | Timeout of (Pbqp.Solution.t * Pbqp.Cost.t) option
      (** Budget exhausted before the proof closed; carries the best
          incumbent found so far, if any (a valid but possibly
          sub-optimal solution). *)

type stats = {
  nodes : int;  (** color-assignment attempts explored *)
  pruned : int;  (** subtrees cut by the bound or a dead end *)
  reduced : int;  (** vertices stripped by R0/R1/R2 before the search *)
}

val solve :
  ?max_nodes:int ->
  ?max_seconds:float ->
  ?reduce:bool ->
  Pbqp.Graph.t ->
  outcome * stats
(** [solve g] proves the optimum of [g].  The input graph is not
    modified.  [max_nodes] (default [1_000_000]) bounds the number of
    branching attempts deterministically; [max_seconds] (default
    [infinity]) additionally bounds CPU time ([Sys.time], checked every
    1024 nodes — use [max_nodes] alone when determinism matters).
    [reduce] (default [true]) applies the exact R0/R1/R2 reductions
    before branching. *)

val optimal_cost :
  ?max_nodes:int -> ?max_seconds:float -> Pbqp.Graph.t -> Pbqp.Cost.t option
(** The proven optimum ([Cost.inf] on infeasible instances), or [None] on
    timeout. *)

val lower_bound : Pbqp.Graph.t -> Pbqp.Cost.t
(** The root admissible bound: never exceeds the cost of any complete
    assignment of the graph (in particular, [lower_bound g] ≤ the
    optimum).  Exposed for property tests. *)
