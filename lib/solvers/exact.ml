(* Branch-and-bound exact PBQP solver.  See the .mli for the search
   design; the invariants relied on below:

   - [Scholz.reduce_exact] returns a private residual sharing the input's
     id space, so mutating its cost vectors is safe and the incumbent
     Solution extends through [Scholz.complete].
   - Edge matrices are immutable while installed in a graph (propagation
     folds rows into *vertex vectors* only), so [Mat.id] soundly keys the
     memoized row-minima tables and the adjacency snapshot taken before
     the search stays valid throughout.
   - [Graph.vertices]/[Graph.neighbors] are sorted increasing, so every
     float accumulation below runs in one fixed order (reproducible
     costs, no hash-order dependence). *)

open Pbqp

type outcome =
  | Optimal of Solution.t * Cost.t
  | Infeasible
  | Timeout of (Solution.t * Cost.t) option

type stats = { nodes : int; pruned : int; reduced : int }

exception Budget_hit

(* Per-row minima of an edge matrix, memoized by [Mat.id]. *)
let row_minima cache mat =
  match Hashtbl.find_opt cache (Mat.id mat) with
  | Some a -> a
  | None ->
      let rows = Mat.rows mat and cols = Mat.cols mat in
      let a = Array.make rows Cost.inf in
      for i = 0 to rows - 1 do
        let best = ref Cost.inf in
        for j = 0 to cols - 1 do
          let x = Mat.get mat i j in
          if Cost.compare x !best < 0 then best := x
        done;
        a.(i) <- !best
      done;
      Hashtbl.add cache (Mat.id mat) a;
      a

(* The admissible completion bound, free-standing form: each vertex
   contributes the minimum over colors of its vector entry plus the row
   minima of the edges it owns (u < v orientation, each edge once).  No
   complete assignment can cost less: it must pick one entry per vertex
   and one matrix entry per edge, each >= the minima summed here. *)
let lower_bound g =
  let cache = Hashtbl.create 16 in
  let m = Graph.m g in
  let scratch = Array.make m Cost.zero in
  let total = ref Cost.zero in
  List.iter
    (fun u ->
      let vu = Graph.cost g u in
      for c = 0 to m - 1 do
        scratch.(c) <- Vec.get vu c
      done;
      List.iter
        (fun v ->
          if u < v then begin
            let rm = row_minima cache (Option.get (Graph.edge_ref g u v)) in
            for c = 0 to m - 1 do
              scratch.(c) <- Cost.add scratch.(c) rm.(c)
            done
          end)
        (Graph.neighbors g u);
      let best = ref Cost.inf in
      for c = 0 to m - 1 do
        if Cost.compare scratch.(c) !best < 0 then best := scratch.(c)
      done;
      total := Cost.add !total !best)
    (Graph.vertices g);
  !total

let solve ?(max_nodes = 1_000_000) ?(max_seconds = infinity) ?(reduce = true)
    g0 =
  let g, reduction =
    if reduce then
      let residual, red = Scholz.reduce_exact g0 in
      (residual, Some red)
    else (Graph.copy g0, None)
  in
  let cap = Graph.capacity g in
  let m = Graph.m g in
  let verts = Graph.vertices g in
  let nverts = List.length verts in
  let assigned = Array.make cap Solution.unassigned in
  let cache = Hashtbl.create 64 in
  (* Adjacency snapshot: per vertex, (neighbor, u-rows matrix, its row
     minima), in increasing neighbor order.  Stable for the whole search
     (only vertex vectors are mutated). *)
  let adj = Array.make cap [] in
  List.iter
    (fun u ->
      adj.(u) <-
        List.map
          (fun v ->
            let muv = Option.get (Graph.edge_ref g u v) in
            (v, muv, row_minima cache muv))
          (Graph.neighbors g u))
    verts;
  let scratch = Array.make m Cost.zero in
  let nodes = ref 0 and pruned = ref 0 in
  let best_cost = ref Cost.inf in
  let best_sol = ref None in
  let t0 = if max_seconds < infinity then Sys.time () else 0.0 in
  let check_budget () =
    if !nodes >= max_nodes then raise Budget_hit;
    if
      max_seconds < infinity
      && !nodes land 1023 = 0
      && Sys.time () -. t0 > max_seconds
    then raise Budget_hit
  in
  (* Completion bound over the still-unassigned vertices, on the current
     (propagated) vectors; unassigned-unassigned edges owned by their
     smaller-id endpoint. *)
  let bound_rest () =
    let total = ref Cost.zero in
    List.iter
      (fun u ->
        if assigned.(u) = Solution.unassigned then begin
          let vu = Graph.cost g u in
          for c = 0 to m - 1 do
            scratch.(c) <- Vec.get vu c
          done;
          List.iter
            (fun (v, _, rm) ->
              if u < v && assigned.(v) = Solution.unassigned then
                for c = 0 to m - 1 do
                  scratch.(c) <- Cost.add scratch.(c) rm.(c)
                done)
            adj.(u);
          let best = ref Cost.inf in
          for c = 0 to m - 1 do
            if Cost.compare scratch.(c) !best < 0 then best := scratch.(c)
          done;
          total := Cost.add !total !best
        end)
      verts;
    !total
  in
  (* Most-constrained unassigned vertex (fewest admissible colors in the
     current vector); ties to the smallest id. *)
  let pick () =
    let best = ref (-1) and best_lib = ref max_int in
    List.iter
      (fun u ->
        if assigned.(u) = Solution.unassigned then begin
          let l = Vec.liberty (Graph.cost g u) in
          if l < !best_lib then begin
            best := u;
            best_lib := l
          end
        end)
      verts;
    !best
  in
  (* Admissible colors of [u], cheapest-first (ties to the smaller
     color). *)
  let candidates u =
    let vu = Graph.cost g u in
    Vec.finite_indices vu
    |> List.map (fun c -> (Vec.get vu c, c))
    |> List.sort compare |> List.map snd
  in
  let propagate u c =
    let trail = ref [] in
    List.iter
      (fun (v, muv, _) ->
        if assigned.(v) = Solution.unassigned then begin
          trail := (v, Vec.copy (Graph.cost g v)) :: !trail;
          Graph.add_to_cost g v (Mat.row muv c)
        end)
      adj.(u);
    !trail
  in
  let undo trail = List.iter (fun (v, vec) -> Graph.set_cost g v vec) trail in
  let rec search acc depth =
    if depth = nverts then begin
      (* complete: [acc] telescopes to Equation 1 on the residual *)
      if Cost.compare acc !best_cost < 0 then begin
        best_cost := acc;
        best_sol := Some (Solution.of_array assigned)
      end
    end
    else begin
      let u = pick () in
      let cands = candidates u in
      if cands = [] then incr pruned
      else
        List.iter
          (fun c ->
            check_budget ();
            incr nodes;
            let acc' = Cost.add acc (Vec.get (Graph.cost g u) c) in
            (* prune on the admissible bound only — never on the bare
               prefix cost, which is not a bound when matrices carry
               negative entries (the allocator's coalescing credits) *)
            let trail = propagate u c in
            assigned.(u) <- c;
            let lb = Cost.add acc' (bound_rest ()) in
            if Cost.compare lb !best_cost >= 0 then incr pruned
            else search acc' (depth + 1);
            assigned.(u) <- Solution.unassigned;
            undo trail)
          cands
    end
  in
  let timed_out =
    match search Cost.zero 0 with () -> false | exception Budget_hit -> true
  in
  let reduced =
    match reduction with Some r -> Scholz.reduced_count r | None -> 0
  in
  let stats = { nodes = !nodes; pruned = !pruned; reduced } in
  (* Reconstruct the reduced periphery and re-evaluate Equation 1 on the
     original graph, so the reported cost is independent of the search's
     incremental accumulation. *)
  let finish sol =
    let sol = Solution.copy sol in
    (match reduction with Some r -> Scholz.complete r sol | None -> ());
    let cost = Solution.cost g0 sol in
    (sol, cost)
  in
  let outcome =
    match (timed_out, !best_sol) with
    | false, Some sol ->
        let sol, cost = finish sol in
        (* a finite residual optimum whose completion is infinite can only
           mean the instance was infeasible to begin with (the reductions
           are equivalence-preserving) *)
        if Cost.is_inf cost then Infeasible else Optimal (sol, cost)
    | false, None -> Infeasible
    | true, Some sol -> (
        match finish sol with
        | _, cost when Cost.is_inf cost -> Timeout None
        | sol, cost -> Timeout (Some (sol, cost)))
    | true, None -> Timeout None
  in
  (outcome, stats)

let optimal_cost ?max_nodes ?max_seconds g =
  match solve ?max_nodes ?max_seconds g with
  | Optimal (_, c), _ -> Some c
  | Infeasible, _ -> Some Cost.inf
  | Timeout _, _ -> None
