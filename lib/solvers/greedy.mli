(** One-pass greedy PBQP baseline.

    Colors vertices most-constrained-first (fewest admissible colors in
    the current, propagated cost vector; ties to the smallest id), each
    with the cheapest admissible color, folding the selected matrix rows
    into the unassigned neighbors — i.e. {!Mrv} without backtracking.
    Deterministic; fails (returns [None]) as soon as any vertex's vector
    becomes all-infinite.  The weakest baseline of the optimality-gap
    tables. *)

type stats = { steps : int  (** vertices colored before success/failure *) }

val solve :
  Pbqp.Graph.t -> (Pbqp.Solution.t * Pbqp.Cost.t) option * stats
(** The input graph is not modified.  The returned cost is Equation 1
    re-evaluated on the input graph (always finite when [Some]). *)
