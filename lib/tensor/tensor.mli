(** Dense float tensors (rank 1 and 2), row-major.

    The minimal numeric substrate for the neural-network stack: no BLAS, no
    broadcasting — shapes must match exactly, and shape errors raise
    [Invalid_argument] eagerly.  Data is mutable; functions return fresh
    tensors unless suffixed [_into] or documented otherwise. *)

type t

(** {1 Construction} *)

val zeros : int array -> t
(** @raise Invalid_argument unless the shape is [[|n|]] or [[|r; c|]] with
    positive dims. *)

val full : int array -> float -> t

val init1 : int -> (int -> float) -> t

val init2 : int -> int -> (int -> int -> float) -> t

val of_array1 : float array -> t
(** Copies. *)

val of_array2 : float array array -> t
(** Row-major copy. @raise Invalid_argument on ragged input. *)

val scalar : float -> t
(** A 1-element rank-1 tensor. *)

(** {1 Shape} *)

val shape : t -> int array
val rank : t -> int
val numel : t -> int
val dim1 : t -> int
(** Length of a rank-1 tensor. @raise Invalid_argument on rank 2. *)

val dims2 : t -> int * int
(** (rows, cols) of a rank-2 tensor. @raise Invalid_argument on rank 1. *)

val same_shape : t -> t -> bool

(** {1 Access} *)

val get1 : t -> int -> float
val set1 : t -> int -> float -> unit
val get2 : t -> int -> int -> float
val set2 : t -> int -> int -> float -> unit
val to_array1 : t -> float array
val data : t -> float array
(** The underlying buffer itself (no copy) — for in-place optimizer
    updates. *)

val copy : t -> t
val fill : t -> float -> unit

(** {1 Elementwise} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add_into : t -> t -> unit
(** [add_into dst src]: [dst += src]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y]: [y += a * x]. *)

(** {1 Linear algebra} *)

val matmul : t -> t -> t
(** rank-2 × rank-2, cache-tiled.  Bit-identical to {!matmul_naive}: both
    accumulate each output element in ascending-[k] order.  When a pool
    is installed ({!set_pool}) and the product is large enough, output
    rows are split across the pool's domains; each output cell is still
    written by exactly one task with the same per-cell accumulation
    order, so the result stays bit-identical for every pool size. *)

val matmul_naive : t -> t -> t
(** The straightforward three-loop kernel — kept as the reference the
    tiled {!matmul} is equivalence-tested against. *)

val matmul_into : t -> t -> t -> unit
(** [matmul_into out a b] writes [a × b] into [out] (overwriting it),
    reusing the buffer instead of allocating.
    @raise Invalid_argument on shape mismatch or if [out] shares its
    buffer with [a] or [b]. *)

val set_pool : Par.Pool.t option -> unit
(** Install (or remove, with [None]) the domain pool used by {!matmul} /
    {!matmul_into} for large products.  Global; call once at startup.
    The pool is only consulted from the submitting domain — nested calls
    made from inside pool tasks run the serial kernel inline. *)

val get_pool : unit -> Par.Pool.t option
(** The currently installed pool, if any. *)

val mv : t -> t -> t
(** rank-2 × rank-1 → rank-1. *)

val tmv : t -> t -> t
(** [tmv m v] is [transpose m × v] without materializing the transpose. *)

val outer : t -> t -> t
(** [outer u v] is the rank-2 tensor [u vᵀ]. *)

val dot : t -> t -> float
val transpose : t -> t

(** {1 Reductions} *)

val sum : t -> float
val mean : t -> float
val max_value : t -> float
val argmax1 : t -> int
val l2norm_sq : t -> float

(** {1 Random initialization} *)

val uniform : rng:Random.State.t -> lo:float -> hi:float -> int array -> t
val gaussian : rng:Random.State.t -> mean:float -> stddev:float -> int array -> t

val xavier : rng:Random.State.t -> fan_in:int -> fan_out:int -> int array -> t
(** Glorot-uniform initialization. *)

(** {1 Misc} *)

val concat1 : t list -> t
(** Concatenation of rank-1 tensors. *)

val blit_row_into : t -> int -> t -> unit
(** [blit_row_into src i dst] copies the rank-1 tensor [src] into row [i]
    of the rank-2 tensor [dst] in place (unsafe inner loop, no allocation).
    @raise Invalid_argument on a width mismatch or row out of bounds. *)

val stack_rows : t list -> t
(** Stack rank-1 tensors of equal length as the rows of a rank-2 tensor
    (a thin wrapper over {!blit_row_into}).
    @raise Invalid_argument on an empty list or ragged lengths. *)

val row : t -> int -> t
(** [row m i] is a fresh rank-1 copy of row [i] of a rank-2 tensor. *)

val approx_equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
