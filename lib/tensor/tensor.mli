(** Dense float tensors (rank 1 and 2), flat unboxed row-major storage.

    The minimal numeric substrate for the neural-network stack: no BLAS, no
    broadcasting — shapes must match exactly, and shape errors raise
    [Invalid_argument] eagerly.  Data is mutable; functions return fresh
    tensors unless suffixed [_into] or documented otherwise.

    Storage is one flat [floatarray] per tensor (unboxed float64; rank-2
    element [(i, j)] at flat index [i * cols + j]).  The serving-tier hot
    path additionally uses {!packed} (Bigarray float64 column panels for
    the fused GEMM) and {!Q.qmat} (Bigarray int8 per-row quantized
    weights). *)

type t

(** {1 Construction} *)

val zeros : int array -> t
(** @raise Invalid_argument unless the shape is [[|n|]] or [[|r; c|]] with
    positive dims. *)

val full : int array -> float -> t

val init1 : int -> (int -> float) -> t

val init2 : int -> int -> (int -> int -> float) -> t

val of_array1 : float array -> t
(** Copies. *)

val of_array2 : float array array -> t
(** Row-major copy. @raise Invalid_argument on ragged input. *)

val of_float_array : floatarray -> t
(** Rank-1 tensor copying an unboxed [floatarray].
    @raise Invalid_argument on empty input. *)

val scalar : float -> t
(** A 1-element rank-1 tensor. *)

(** {1 Shape} *)

val shape : t -> int array
val rank : t -> int
val numel : t -> int
val dim1 : t -> int
(** Length of a rank-1 tensor. @raise Invalid_argument on rank 2. *)

val dims2 : t -> int * int
(** (rows, cols) of a rank-2 tensor. @raise Invalid_argument on rank 1. *)

val same_shape : t -> t -> bool

(** {1 Access} *)

val get1 : t -> int -> float
val set1 : t -> int -> float -> unit
val get2 : t -> int -> int -> float
val set2 : t -> int -> int -> float -> unit
val to_array1 : t -> float array
val to_float_array : t -> floatarray
(** Copy of the flat storage, any rank (row-major for rank 2). *)

val data : t -> floatarray
(** The underlying flat buffer itself (no copy) — for in-place optimizer
    updates.  Rank-2 element [(i, j)] is at index [i * cols + j]. *)

val copy : t -> t
val fill : t -> float -> unit

(** {1 Elementwise} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add_into : t -> t -> unit
(** [add_into dst src]: [dst += src]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y]: [y += a * x]. *)

(** {1 Linear algebra} *)

val matmul : t -> t -> t
(** rank-2 × rank-2, cache-tiled.  Bit-identical to {!matmul_naive}: both
    accumulate each output element in ascending-[k] order.  When a pool
    is installed ({!set_pool}) and the product is large enough, output
    rows are split across the pool's domains; each output cell is still
    written by exactly one task with the same per-cell accumulation
    order, so the result stays bit-identical for every pool size. *)

val matmul_naive : t -> t -> t
(** The straightforward three-loop kernel — kept as the reference the
    tiled {!matmul} is equivalence-tested against. *)

val matmul_into : t -> t -> t -> unit
(** [matmul_into out a b] writes [a × b] into [out] (overwriting it),
    reusing the buffer instead of allocating.
    @raise Invalid_argument on shape mismatch or if [out] shares its
    buffer with [a] or [b]. *)

val set_pool : Par.Pool.t option -> unit
(** Install (or remove, with [None]) the domain pool used by {!matmul} /
    {!matmul_into} for large products.  Global; call once at startup.
    The pool is only consulted from the submitting domain — nested calls
    made from inside pool tasks run the serial kernel inline. *)

val get_pool : unit -> Par.Pool.t option
(** The currently installed pool, if any. *)

(** {1 Packed-panel GEMM with fused epilogues}

    The serving-tier hot path: the B operand (in practice a transposed
    weight matrix, memoized per network version) is repacked once into
    contiguous width-8 column panels backed by a float64 [Bigarray], and
    the fused kernel computes [A × B] with the epilogue (bias add,
    residual add, relu) folded into the same pass — each output cell is
    accumulated in registers and written exactly once, so the forward
    makes one pass over memory instead of three. *)

type packed
(** A rank-2 operand repacked into contiguous column panels. *)

val pack : t -> packed
(** Pack a [k × n] matrix as the B operand. *)

val pack_transposed : t -> packed
(** [pack_transposed w] packs [wᵀ] without materializing the transpose:
    for an [n × k] weight matrix this yields the packed [k × n] B operand
    such that [matmul_packed_into out x (pack_transposed w)] computes
    [x × wᵀ] — the linear-layer forward. *)

val packed_dims : packed -> int * int
(** [(k, n)] dims of the packed operand. *)

val matmul_packed_into :
  ?bias:t -> ?residual:t -> ?relu:bool -> t -> t -> packed -> unit
(** [matmul_packed_into ?bias ?residual ?relu out a bp] writes
    [a × bp] into [out] with the optional epilogue applied per cell in
    this order: [+ bias.(j)], then [residual.(i, j) + ·], then relu.
    Bit-identical to the unfused [matmul_into] followed by separate
    bias/residual/relu passes (same float operations in the same order;
    each cell accumulates ascending-k with the same zero-skip).
    [out == residual] aliasing is allowed (each cell is read before its
    single write); [out] must not alias [a].  Row-split across the
    installed pool for large products, bit-identical at every pool
    size. *)

(** {1 Int8 quantized serving path}

    Inference-only: per-row symmetric int8 quantization (absmax / 127,
    round half away from zero, clamped to ±127) of a weight matrix, an
    int8×int8→int GEMM with the float rescale and the same fused
    epilogue applied per cell.  Activations are quantized per row on the
    fly into a caller-provided {!Q.scratch}, so a quantized forward
    allocates nothing per call.  Accuracy is certified upstream
    ([Check.Quantcert]) before the path is allowed to serve. *)

module Q : sig
  type qmat
  (** Per-row int8 quantization of a rank-2 matrix (int8 [Bigarray]
      values plus one float scale per row). *)

  val quantize_rows : t -> qmat
  val rows : qmat -> int
  val cols : qmat -> int

  type scratch
  (** Reusable activation-quantization buffers for batches up to
      [rows × cols]. *)

  val scratch : rows:int -> cols:int -> scratch

  val matmul_qt_into :
    ?bias:t -> ?residual:t -> ?relu:bool -> scratch:scratch -> t -> t ->
    qmat -> unit
  (** [matmul_qt_into ~scratch out x qw] computes [x × qwᵀ] (for [qw]
      quantized from an [n × k] weight matrix, matching
      {!pack_transposed}'s orientation) with dynamic per-row activation
      quantization and the float rescale
      [acc * (xscale_i * wscale_j)] plus the fused bias/residual/relu
      epilogue.  @raise Invalid_argument on shape mismatch, aliasing, or
      an undersized scratch. *)

  val corrupt_for_test : qmat -> unit
  (** Tamper the quantized payload in place (flips the largest-magnitude
      cell) while leaving scales and shape intact — test hook proving
      the certification gate rejects corrupted weights. *)
end

val mv : t -> t -> t
(** rank-2 × rank-1 → rank-1. *)

val tmv : t -> t -> t
(** [tmv m v] is [transpose m × v] without materializing the transpose. *)

val outer : t -> t -> t
(** [outer u v] is the rank-2 tensor [u vᵀ]. *)

val dot : t -> t -> float
val transpose : t -> t

(** {1 Reductions} *)

val sum : t -> float
val mean : t -> float
val max_value : t -> float
val argmax1 : t -> int
val l2norm_sq : t -> float

(** {1 Random initialization} *)

val uniform : rng:Random.State.t -> lo:float -> hi:float -> int array -> t
val gaussian : rng:Random.State.t -> mean:float -> stddev:float -> int array -> t

val xavier : rng:Random.State.t -> fan_in:int -> fan_out:int -> int array -> t
(** Glorot-uniform initialization. *)

(** {1 Misc} *)

val concat1 : t list -> t
(** Concatenation of rank-1 tensors. *)

val blit_row_into : t -> int -> t -> unit
(** [blit_row_into src i dst] copies the rank-1 tensor [src] into row [i]
    of the rank-2 tensor [dst] in place (unsafe inner loop, no allocation).
    @raise Invalid_argument on a width mismatch or row out of bounds. *)

val stack_rows : t list -> t
(** Stack rank-1 tensors of equal length as the rows of a rank-2 tensor
    (a thin wrapper over {!blit_row_into}).
    @raise Invalid_argument on an empty list or ragged lengths. *)

val row : t -> int -> t
(** [row m i] is a fresh rank-1 copy of row [i] of a rank-2 tensor. *)

val approx_equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
