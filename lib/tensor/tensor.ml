(* Flat unboxed tensor core.

   Storage is a single [floatarray] per tensor (unboxed float64, flat
   row-major) — rank-2 element (i, j) lives at [i * cols + j].  The hot
   GEMM kernels additionally use two Bigarray-backed side structures:

   - [packed]: the B operand repacked into contiguous width-4 column
     panels (float64 Bigarray) so the inner loop streams one cache line
     per panel step and the pack cost is amortized across a whole batch
     (the packed weights are memoized per network version upstream);
   - [Q.qmat]: per-row int8 quantized weights (int8 Bigarray) for the
     inference-only quantized serving path, with float rescale in the
     epilogue.

   Bit-identity discipline: every float kernel accumulates each output
   cell in globally ascending-k order and skips exact-zero A
   contributions ([if aik <> 0.0]), so [matmul_naive], the tiled
   [matmul]/[matmul_into], and the packed fused kernel all produce
   bit-identical results, for every pool size (row splits never change a
   per-cell accumulation order). *)

module F = Float.Array

type t = { shape : int array; data : floatarray }

let check_shape shape =
  match shape with
  | [| n |] when n > 0 -> ()
  | [| r; c |] when r > 0 && c > 0 -> ()
  | _ -> invalid_arg "Tensor: shape must be [|n|] or [|r; c|] with positive dims"

let numel_of shape = Array.fold_left ( * ) 1 shape

let zeros shape =
  check_shape shape;
  { shape = Array.copy shape; data = F.make (numel_of shape) 0.0 }

let full shape x =
  check_shape shape;
  { shape = Array.copy shape; data = F.make (numel_of shape) x }

let init1 n f =
  check_shape [| n |];
  { shape = [| n |]; data = F.init n f }

let init2 r c f =
  check_shape [| r; c |];
  { shape = [| r; c |]; data = F.init (r * c) (fun k -> f (k / c) (k mod c)) }

let of_array1 a =
  if Array.length a = 0 then invalid_arg "Tensor.of_array1: empty";
  { shape = [| Array.length a |]; data = F.map_from_array (fun x -> x) a }

let of_array2 a =
  let r = Array.length a in
  if r = 0 then invalid_arg "Tensor.of_array2: empty";
  let c = Array.length a.(0) in
  if c = 0 then invalid_arg "Tensor.of_array2: empty row";
  Array.iter
    (fun row -> if Array.length row <> c then invalid_arg "Tensor.of_array2: ragged")
    a;
  init2 r c (fun i j -> a.(i).(j))

let of_float_array fa =
  if F.length fa = 0 then invalid_arg "Tensor.of_float_array: empty";
  { shape = [| F.length fa |]; data = F.copy fa }

let to_float_array t = F.copy t.data
let scalar x = { shape = [| 1 |]; data = F.make 1 x }
let shape t = Array.copy t.shape
let rank t = Array.length t.shape
let numel t = F.length t.data

let dim1 t =
  match t.shape with [| n |] -> n | _ -> invalid_arg "Tensor.dim1: not rank 1"

let dims2 t =
  match t.shape with
  | [| r; c |] -> (r, c)
  | _ -> invalid_arg "Tensor.dims2: not rank 2"

let same_shape a b = a.shape = b.shape
let get1 t i = ignore (dim1 t); F.get t.data i
let set1 t i x = ignore (dim1 t); F.set t.data i x

let get2 t i j =
  let _, c = dims2 t in
  F.get t.data ((i * c) + j)

let set2 t i j x =
  let _, c = dims2 t in
  F.set t.data ((i * c) + j) x

let to_array1 t = ignore (dim1 t); F.map_to_array (fun x -> x) t.data
let data t = t.data
let copy t = { shape = Array.copy t.shape; data = F.copy t.data }
let fill t x = F.fill t.data 0 (F.length t.data) x

let lift2 name f a b =
  if not (same_shape a b) then invalid_arg (Printf.sprintf "Tensor.%s: shape mismatch" name);
  { shape = Array.copy a.shape;
    data = F.init (F.length a.data) (fun k -> f (F.get a.data k) (F.get b.data k)) }

let add a b = lift2 "add" ( +. ) a b
let sub a b = lift2 "sub" ( -. ) a b
let mul a b = lift2 "mul" ( *. ) a b
let scale s t = { shape = Array.copy t.shape; data = F.map (fun x -> s *. x) t.data }
let map f t = { shape = Array.copy t.shape; data = F.map f t.data }
let map2 f a b = lift2 "map2" f a b

let add_into dst src =
  if not (same_shape dst src) then invalid_arg "Tensor.add_into: shape mismatch";
  let dd = dst.data and sd = src.data in
  for k = 0 to F.length sd - 1 do
    F.unsafe_set dd k (F.unsafe_get dd k +. F.unsafe_get sd k)
  done

let axpy a x y =
  if not (same_shape x y) then invalid_arg "Tensor.axpy: shape mismatch";
  let xd = x.data and yd = y.data in
  for k = 0 to F.length xd - 1 do
    F.unsafe_set yd k (F.unsafe_get yd k +. (a *. F.unsafe_get xd k))
  done

let matmul_naive a b =
  let ra, ca = dims2 a and rb, cb = dims2 b in
  if ca <> rb then invalid_arg "Tensor.matmul: inner dims differ";
  let out = zeros [| ra; cb |] in
  let ad = a.data and bd = b.data and od = out.data in
  for i = 0 to ra - 1 do
    for k = 0 to ca - 1 do
      let aik = F.get ad ((i * ca) + k) in
      if aik <> 0.0 then
        for j = 0 to cb - 1 do
          F.set od ((i * cb) + j)
            (F.get od ((i * cb) + j) +. (aik *. F.get bd ((k * cb) + j)))
        done
    done
  done;
  out

(* Cache-tiled GEMM.  Per output element the k-accumulation order is
   globally ascending — the same order the naive kernel uses — and skipped
   zero contributions add exact (positive) zeros, so results are
   bit-identical to [matmul_naive].  32×32 double tiles are 8 KB: an A
   tile, a B tile and an out row-block coexist in a 32 KB L1. *)
let block = 32

(* The tiled kernel restricted to output rows [lo, hi): zero-fills its
   own row range then accumulates into it, so disjoint row ranges touch
   disjoint slices of [od] and can run on different domains.  Splitting
   by rows does not change any per-element accumulation order (each
   output cell's k-sum lives entirely inside one row), so any partition
   is bit-identical to the serial [lo=0, hi=ra] call. *)
let matmul_rows od ad bd ~ca ~cb ~lo ~hi =
  F.fill od (lo * cb) ((hi - lo) * cb) 0.0;
  let ib = ref lo in
  while !ib < hi do
    let imax = min (!ib + block) hi in
    let kb = ref 0 in
    while !kb < ca do
      let kmax = min (!kb + block) ca in
      let jb = ref 0 in
      while !jb < cb do
        let jmax = min (!jb + block) cb in
        (* dims are validated by the caller, so every index below is in
           range; unsafe accesses drop the per-element bounds checks
           that dominate the inner loop *)
        for i = !ib to imax - 1 do
          let orow = i * cb in
          for k = !kb to kmax - 1 do
            let aik = F.unsafe_get ad ((i * ca) + k) in
            if aik <> 0.0 then begin
              let brow = k * cb in
              for j = !jb to jmax - 1 do
                F.unsafe_set od (orow + j)
                  (F.unsafe_get od (orow + j)
                  +. (aik *. F.unsafe_get bd (brow + j)))
              done
            end
          done
        done;
        jb := !jb + block
      done;
      kb := !kb + block
    done;
    ib := !ib + block
  done
[@@hot]

(* Optional pool for parallel GEMM; set once at startup by the driver.
   Atomic so a concurrent reader sees either the old or the new pool,
   never a torn value. *)
let pool : Par.Pool.t option Atomic.t = Atomic.make None
let set_pool p = Atomic.set pool p
let get_pool () = Atomic.get pool

(* Below this many multiply-adds the fork/join overhead beats the win. *)
let par_threshold = 65536

let matmul_into out a b =
  let ra, ca = dims2 a and rb, cb = dims2 b in
  if ca <> rb then invalid_arg "Tensor.matmul_into: inner dims differ";
  let ro, co = dims2 out in
  if ro <> ra || co <> cb then
    invalid_arg "Tensor.matmul_into: output shape mismatch";
  if out.data == a.data || out.data == b.data then
    invalid_arg "Tensor.matmul_into: output aliases an input";
  let ad = a.data and bd = b.data and od = out.data in
  match Atomic.get pool with
  | Some p
    when Par.Pool.size p > 1 && ra > 1 && ra * ca * cb >= par_threshold ->
      Par.Pool.parallel_rows p ~rows:ra (fun ~lo ~hi ->
          matmul_rows od ad bd ~ca ~cb ~lo ~hi)
  | _ -> matmul_rows od ad bd ~ca ~cb ~lo:0 ~hi:ra

let matmul a b =
  let ra, ca = dims2 a and rb, cb = dims2 b in
  if ca <> rb then invalid_arg "Tensor.matmul: inner dims differ";
  let out = zeros [| ra; cb |] in
  matmul_into out a b;
  out

(* {2 Packed-panel GEMM with fused epilogues} *)

type ba64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* B repacked into width-8 column panels: panel [p] covers output
   columns [8p, 8p+8) (the last panel zero-padded past [pn]), and
   element (k, jj) of panel [p] lives at [p * (pk * 8) + k * 8 + jj].
   The fused kernel then walks A's row once while streaming each panel
   contiguously — one pass over memory per output row block, with the
   eight per-panel accumulators living in registers instead of [od];
   the per-k loads of A and the zero-test amortize over 8 columns. *)
type packed = { pk : int; pn : int; panels : ba64 }

let panel_width = 8

let packed_dims p = (p.pk, p.pn)

let pack_panels ~pk ~pn get =
  let npanels = (pn + panel_width - 1) / panel_width in
  let panels =
    Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout
      (npanels * pk * panel_width)
  in
  Bigarray.Array1.fill panels 0.0;
  for p = 0 to npanels - 1 do
    let base = p * pk * panel_width in
    let j0 = p * panel_width in
    for k = 0 to pk - 1 do
      for jj = 0 to min panel_width (pn - j0) - 1 do
        Bigarray.Array1.unsafe_set panels (base + (k * panel_width) + jj)
          (get k (j0 + jj))
      done
    done
  done;
  { pk; pn; panels }

let pack b =
  let rb, cb = dims2 b in
  let bd = b.data in
  pack_panels ~pk:rb ~pn:cb (fun k j -> F.unsafe_get bd ((k * cb) + j))

let pack_transposed w =
  let rw, cw = dims2 w in
  let wd = w.data in
  (* packs wᵀ (cw × rw) without materializing it: element (k, j) of the
     packed B is w.(j).(k) *)
  pack_panels ~pk:cw ~pn:rw (fun k j -> F.unsafe_get wd ((j * cw) + k))

(* The fused kernel restricted to output rows [lo, hi).  Each output
   cell is accumulated in a register in ascending-k order with the same
   zero-skip as the naive/tiled kernels, then written exactly once after
   the epilogue — so [out == residual] aliasing is safe (the residual
   cell is read before the single write), and fused results are
   bit-identical to the unfused
   [matmul_into; add bias rowwise; add residual; relu] sequence, which
   applies the exact same float operations in the exact same order. *)
let matmul_packed_rows od ad ~ca ~bp ~bias ~residual ~relu ~lo ~hi =
  let pn = bp.pn and panels = bp.panels in
  let npanels = (pn + panel_width - 1) / panel_width in
  let pstride = ca * panel_width in
  for i = lo to hi - 1 do
    let arow = i * ca in
    let orow = i * pn in
    for p = 0 to npanels - 1 do
      let base = p * pstride in
      let c0 = ref 0.0 and c1 = ref 0.0 and c2 = ref 0.0 and c3 = ref 0.0 in
      let c4 = ref 0.0 and c5 = ref 0.0 and c6 = ref 0.0 and c7 = ref 0.0 in
      for k = 0 to ca - 1 do
        let aik = F.unsafe_get ad (arow + k) in
        if aik <> 0.0 then begin
          let kb = base + (k * panel_width) in
          c0 := !c0 +. (aik *. Bigarray.Array1.unsafe_get panels kb);
          c1 := !c1 +. (aik *. Bigarray.Array1.unsafe_get panels (kb + 1));
          c2 := !c2 +. (aik *. Bigarray.Array1.unsafe_get panels (kb + 2));
          c3 := !c3 +. (aik *. Bigarray.Array1.unsafe_get panels (kb + 3));
          c4 := !c4 +. (aik *. Bigarray.Array1.unsafe_get panels (kb + 4));
          c5 := !c5 +. (aik *. Bigarray.Array1.unsafe_get panels (kb + 5));
          c6 := !c6 +. (aik *. Bigarray.Array1.unsafe_get panels (kb + 6));
          c7 := !c7 +. (aik *. Bigarray.Array1.unsafe_get panels (kb + 7))
        end
      done;
      let j0 = p * panel_width in
      for jj = 0 to min panel_width (pn - j0) - 1 do
        let acc =
          match jj with
          | 0 -> !c0
          | 1 -> !c1
          | 2 -> !c2
          | 3 -> !c3
          | 4 -> !c4
          | 5 -> !c5
          | 6 -> !c6
          | _ -> !c7
        in
        let j = j0 + jj in
        let v =
          match bias with
          | Some bd -> acc +. F.unsafe_get bd j
          | None -> acc
        in
        let v =
          match residual with
          | Some rd -> F.unsafe_get rd (orow + j) +. v
          | None -> v
        in
        (* same expression as the standalone relu pass: [else] also maps
           -0.0 and nan to +0.0 *)
        let v = if relu then (if v > 0.0 then v else 0.0) else v in
        F.unsafe_set od (orow + j) v
      done
    done
  done
[@@hot]

let matmul_packed_into ?bias ?residual ?(relu = false) out a bp =
  let ra, ca = dims2 a in
  if ca <> bp.pk then invalid_arg "Tensor.matmul_packed_into: inner dims differ";
  let ro, co = dims2 out in
  if ro <> ra || co <> bp.pn then
    invalid_arg "Tensor.matmul_packed_into: output shape mismatch";
  if out.data == a.data then
    invalid_arg "Tensor.matmul_packed_into: output aliases input";
  let bias =
    match bias with
    | None -> None
    | Some b ->
        if dim1 b <> bp.pn then
          invalid_arg "Tensor.matmul_packed_into: bias width mismatch";
        Some b.data
  in
  let residual =
    match residual with
    | None -> None
    | Some r ->
        if dims2 r <> (ra, bp.pn) then
          invalid_arg "Tensor.matmul_packed_into: residual shape mismatch";
        Some r.data
  in
  let ad = a.data and od = out.data in
  match Atomic.get pool with
  | Some p
    when Par.Pool.size p > 1 && ra > 1 && ra * ca * bp.pn >= par_threshold ->
      Par.Pool.parallel_rows p ~rows:ra (fun ~lo ~hi ->
          matmul_packed_rows od ad ~ca ~bp ~bias ~residual ~relu ~lo ~hi)
  | _ -> matmul_packed_rows od ad ~ca ~bp ~bias ~residual ~relu ~lo:0 ~hi:ra

(* {2 Int8 quantized serving path} *)

module Q = struct
  type i8 = (int, Bigarray.int8_signed_elt, Bigarray.c_layout) Bigarray.Array1.t

  (* Per-row symmetric int8 quantization: row [r] of the original matrix
     is [scale.(r) * q.(r, k)] with [q] clamped to [-127, 127] (round
     half away from zero).  [qmat] is inference-only — it never feeds
     gradients — and is memoized per network version upstream. *)
  type qmat = { qrows : int; qcols : int; q : i8; scales : floatarray }

  let rows m = m.qrows
  let cols m = m.qcols

  (* [@inline always]: a non-inlined call would box both float arguments
     at every quantized cell — the activation-quant loop must stay
     allocation-free. *)
  let[@inline always] quantize_value ~inv x =
    let r = Float.round (x *. inv) in
    let r = if r > 127.0 then 127.0 else if r < -127.0 then -127.0 else r in
    int_of_float r

  let quantize_rows m =
    let r, c = dims2 m in
    let md = m.data in
    let q = Bigarray.Array1.create Bigarray.Int8_signed Bigarray.C_layout (r * c) in
    let scales = F.make r 0.0 in
    for i = 0 to r - 1 do
      let base = i * c in
      let absmax = ref 0.0 in
      for k = 0 to c - 1 do
        let a = Float.abs (F.unsafe_get md (base + k)) in
        if a > !absmax then absmax := a
      done;
      let scale = if !absmax = 0.0 then 1.0 else !absmax /. 127.0 in
      let inv = 1.0 /. scale in
      F.unsafe_set scales i scale;
      for k = 0 to c - 1 do
        Bigarray.Array1.unsafe_set q (base + k)
          (quantize_value ~inv (F.unsafe_get md (base + k)))
      done
    done;
    { qrows = r; qcols = c; q; scales }

  (* Reusable activation-quantization buffers: [qx] holds the int8
     activations (row-major, up to [rows * cols]), [xscales] the per-row
     scales.  Sized once per batch shape and reused across layers so the
     quantized forward allocates nothing per call. *)
  type scratch = { cap_rows : int; cap : int; qx : i8; xscales : floatarray }

  let scratch ~rows ~cols =
    if rows <= 0 || cols <= 0 then invalid_arg "Tensor.Q.scratch: bad dims";
    { cap_rows = rows;
      cap = rows * cols;
      qx = Bigarray.Array1.create Bigarray.Int8_signed Bigarray.C_layout (rows * cols);
      xscales = F.make rows 0.0 }

  (* int8×int8→int GEMM against quantized weights, with the float
     rescale (and the same fused bias/residual/relu epilogue as the
     float kernel) applied per output cell: activations are quantized
     per row on the fly into [scratch], the accumulator is a native int
     (63-bit — no overflow for any realistic K: |acc| <= K * 127²), and
     [out.(i, j) = acc * (xscale_i * wscale_j) (+ bias_j) ...]. *)
  (* [qx]'s type must be ground here: a polymorphic kind/layout would
     compile every element access to the generic (C-call) bigarray read
     instead of a direct int8 load. *)
  let matmul_qt_rows od ~(qx : i8) ~xscales ~qw ~ca ~bias ~residual ~relu ~lo
      ~hi =
    let pn = qw.qrows and wq = qw.q and wscales = qw.scales in
    (* Width-8 output blocks, like the float packed kernel: one pass over
       the activation row feeds 8 integer accumulators, amortizing the
       per-k activation load and zero-skip (relu layers quantize to many
       exact zeros).  Integer accumulation is exact, so the blocking and
       the skip cannot change any output bit; the tail columns below run
       the plain per-column loop. *)
    let full = pn - (pn mod 8) in
    for i = lo to hi - 1 do
      let xrow = i * ca in
      let orow = i * pn in
      let sx = F.unsafe_get xscales i in
      let j0 = ref 0 in
      while !j0 < full do
        let w0 = !j0 * ca in
        let w1 = w0 + ca and w2 = w0 + (2 * ca) and w3 = w0 + (3 * ca) in
        let w4 = w0 + (4 * ca) and w5 = w0 + (5 * ca) in
        let w6 = w0 + (6 * ca) and w7 = w0 + (7 * ca) in
        let c0 = ref 0 and c1 = ref 0 and c2 = ref 0 and c3 = ref 0 in
        let c4 = ref 0 and c5 = ref 0 and c6 = ref 0 and c7 = ref 0 in
        for k = 0 to ca - 1 do
          let xv = Bigarray.Array1.unsafe_get qx (xrow + k) in
          if xv <> 0 then begin
            c0 := !c0 + (xv * Bigarray.Array1.unsafe_get wq (w0 + k));
            c1 := !c1 + (xv * Bigarray.Array1.unsafe_get wq (w1 + k));
            c2 := !c2 + (xv * Bigarray.Array1.unsafe_get wq (w2 + k));
            c3 := !c3 + (xv * Bigarray.Array1.unsafe_get wq (w3 + k));
            c4 := !c4 + (xv * Bigarray.Array1.unsafe_get wq (w4 + k));
            c5 := !c5 + (xv * Bigarray.Array1.unsafe_get wq (w5 + k));
            c6 := !c6 + (xv * Bigarray.Array1.unsafe_get wq (w6 + k));
            c7 := !c7 + (xv * Bigarray.Array1.unsafe_get wq (w7 + k))
          end
        done;
        for jj = 0 to 7 do
          let j = !j0 + jj in
          let acc =
            match jj with
            | 0 -> !c0
            | 1 -> !c1
            | 2 -> !c2
            | 3 -> !c3
            | 4 -> !c4
            | 5 -> !c5
            | 6 -> !c6
            | _ -> !c7
          in
          let v = float_of_int acc *. (sx *. F.unsafe_get wscales j) in
          let v =
            match bias with Some bd -> v +. F.unsafe_get bd j | None -> v
          in
          let v =
            match residual with
            | Some rd -> F.unsafe_get rd (orow + j) +. v
            | None -> v
          in
          let v = if relu then (if v > 0.0 then v else 0.0) else v in
          F.unsafe_set od (orow + j) v
        done;
        j0 := !j0 + 8
      done;
      for j = full to pn - 1 do
        let wrow = j * ca in
        let acc = ref 0 in
        for k = 0 to ca - 1 do
          acc :=
            !acc
            + (Bigarray.Array1.unsafe_get qx (xrow + k)
              * Bigarray.Array1.unsafe_get wq (wrow + k))
        done;
        let v = float_of_int !acc *. (sx *. F.unsafe_get wscales j) in
        let v =
          match bias with Some bd -> v +. F.unsafe_get bd j | None -> v
        in
        let v =
          match residual with
          | Some rd -> F.unsafe_get rd (orow + j) +. v
          | None -> v
        in
        let v = if relu then (if v > 0.0 then v else 0.0) else v in
        F.unsafe_set od (orow + j) v
      done
    done
  [@@hot]

  let matmul_qt_into ?bias ?residual ?(relu = false) ~scratch:s out x qw =
    let ra, ca = dims2 x in
    if ca <> qw.qcols then invalid_arg "Tensor.Q.matmul_qt_into: inner dims differ";
    let ro, co = dims2 out in
    if ro <> ra || co <> qw.qrows then
      invalid_arg "Tensor.Q.matmul_qt_into: output shape mismatch";
    if out.data == x.data then
      invalid_arg "Tensor.Q.matmul_qt_into: output aliases input";
    if ra > s.cap_rows || ra * ca > s.cap then
      invalid_arg "Tensor.Q.matmul_qt_into: scratch too small";
    let bias =
      match bias with
      | None -> None
      | Some b ->
          if dim1 b <> qw.qrows then
            invalid_arg "Tensor.Q.matmul_qt_into: bias width mismatch";
          Some b.data
    in
    let residual =
      match residual with
      | None -> None
      | Some r ->
          if dims2 r <> (ra, qw.qrows) then
            invalid_arg "Tensor.Q.matmul_qt_into: residual shape mismatch";
          Some r.data
    in
    let xd = x.data and od = out.data in
    let qx = s.qx and xscales = s.xscales in
    (* dynamic per-row activation quantization into the scratch *)
    for i = 0 to ra - 1 do
      let base = i * ca in
      let absmax = ref 0.0 in
      for k = 0 to ca - 1 do
        let a = Float.abs (F.unsafe_get xd (base + k)) in
        if a > !absmax then absmax := a
      done;
      let scale = if !absmax = 0.0 then 1.0 else !absmax /. 127.0 in
      let inv = 1.0 /. scale in
      F.unsafe_set xscales i scale;
      for k = 0 to ca - 1 do
        Bigarray.Array1.unsafe_set qx (base + k)
          (quantize_value ~inv (F.unsafe_get xd (base + k)))
      done
    done;
    match Atomic.get pool with
    | Some p
      when Par.Pool.size p > 1 && ra > 1 && ra * ca * qw.qrows >= par_threshold
      ->
        Par.Pool.parallel_rows p ~rows:ra (fun ~lo ~hi ->
            matmul_qt_rows od ~qx ~xscales ~qw ~ca ~bias ~residual ~relu ~lo
              ~hi)
    | _ -> matmul_qt_rows od ~qx ~xscales ~qw ~ca ~bias ~residual ~relu ~lo:0 ~hi:ra

  (* Test-only tamper hook: flip the sign of the largest-magnitude cell
     of the quantized matrix in place.  The memoized qmat still carries a
     valid version stamp upstream, so a certification pass sees a real
     int8-vs-float divergence — used to prove the accuracy gate rejects
     corrupted weights. *)
  let corrupt_for_test m =
    let n = m.qrows * m.qcols in
    let best = ref 0 in
    for k = 1 to n - 1 do
      if abs (Bigarray.Array1.get m.q k) > abs (Bigarray.Array1.get m.q !best)
      then best := k
    done;
    let v = Bigarray.Array1.get m.q !best in
    Bigarray.Array1.set m.q !best
      (if v = 0 then 127 else if v > 0 then -v else 127)
end

let blit_row_into src i dst =
  let c = dim1 src in
  let r, cd = dims2 dst in
  if cd <> c then invalid_arg "Tensor.blit_row_into: width mismatch";
  if i < 0 || i >= r then invalid_arg "Tensor.blit_row_into: row out of bounds";
  let sd = src.data and dd = dst.data in
  let base = i * c in
  for j = 0 to c - 1 do
    F.unsafe_set dd (base + j) (F.unsafe_get sd j)
  done
[@@hot]

let stack_rows rows =
  match rows with
  | [] -> invalid_arg "Tensor.stack_rows: empty"
  | r0 :: _ ->
      let c = dim1 r0 in
      let n = List.length rows in
      let out = zeros [| n; c |] in
      List.iteri
        (fun i r ->
          if dim1 r <> c then invalid_arg "Tensor.stack_rows: ragged rows";
          blit_row_into r i out)
        rows;
      out

let row m i =
  let r, c = dims2 m in
  if i < 0 || i >= r then invalid_arg "Tensor.row: index out of bounds";
  { shape = [| c |]; data = F.sub m.data (i * c) c }

let mv m v =
  let r, c = dims2 m in
  if dim1 v <> c then invalid_arg "Tensor.mv: dims differ";
  let md = m.data and vd = v.data in
  init1 r (fun i ->
      let acc = ref 0.0 in
      for j = 0 to c - 1 do
        acc := !acc +. (F.get md ((i * c) + j) *. F.get vd j)
      done;
      !acc)

let tmv m v =
  let r, c = dims2 m in
  if dim1 v <> r then invalid_arg "Tensor.tmv: dims differ";
  let out = zeros [| c |] in
  let md = m.data and vd = v.data and od = out.data in
  for i = 0 to r - 1 do
    let vi = F.get vd i in
    if vi <> 0.0 then
      for j = 0 to c - 1 do
        F.set od j (F.get od j +. (F.get md ((i * c) + j) *. vi))
      done
  done;
  out

let outer u v =
  let n = dim1 u and m = dim1 v in
  let ud = u.data and vd = v.data in
  init2 n m (fun i j -> F.get ud i *. F.get vd j)

let dot a b =
  if not (same_shape a b) then invalid_arg "Tensor.dot: shape mismatch";
  let ad = a.data and bd = b.data in
  let acc = ref 0.0 in
  for k = 0 to F.length ad - 1 do
    acc := !acc +. (F.unsafe_get ad k *. F.unsafe_get bd k)
  done;
  !acc

let transpose m =
  let r, c = dims2 m in
  let md = m.data in
  init2 c r (fun i j -> F.get md ((j * c) + i))

let sum t = F.fold_left ( +. ) 0.0 t.data
let mean t = sum t /. float_of_int (numel t)
let max_value t = F.fold_left Float.max neg_infinity t.data

let argmax1 t =
  ignore (dim1 t);
  let d = t.data in
  let best = ref 0 in
  for i = 1 to F.length d - 1 do
    if F.get d i > F.get d !best then best := i
  done;
  !best

let l2norm_sq t = F.fold_left (fun acc x -> acc +. (x *. x)) 0.0 t.data

let uniform ~rng ~lo ~hi shape =
  check_shape shape;
  { shape = Array.copy shape;
    data =
      F.init (numel_of shape) (fun _ ->
          lo +. Random.State.float rng (hi -. lo)) }

let gaussian ~rng ~mean ~stddev shape =
  check_shape shape;
  let sample () =
    let u1 = Float.max 1e-12 (Random.State.float rng 1.0) in
    let u2 = Random.State.float rng 1.0 in
    mean +. (stddev *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))
  in
  { shape = Array.copy shape; data = F.init (numel_of shape) (fun _ -> sample ()) }

let xavier ~rng ~fan_in ~fan_out shape =
  let bound = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  uniform ~rng ~lo:(-.bound) ~hi:bound shape

let concat1 ts =
  let ts = List.map (fun t -> ignore (dim1 t); t) ts in
  let n = List.fold_left (fun acc t -> acc + numel t) 0 ts in
  if n = 0 then invalid_arg "Tensor.concat1: empty";
  let out = zeros [| n |] in
  let pos = ref 0 in
  List.iter
    (fun t ->
      F.blit t.data 0 out.data !pos (F.length t.data);
      pos := !pos + F.length t.data)
    ts;
  out

let approx_equal ?(eps = 1e-9) a b =
  same_shape a b
  &&
  let ad = a.data and bd = b.data in
  let ok = ref true in
  for k = 0 to F.length ad - 1 do
    if Float.abs (F.get ad k -. F.get bd k) > eps then ok := false
  done;
  !ok

let pp ppf t =
  let row_list off len =
    List.init len (fun k -> F.get t.data (off + k))
  in
  match t.shape with
  | [| n |] ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           (fun ppf x -> Format.fprintf ppf "%g" x))
        (row_list 0 n)
  | [| r; c |] ->
      Format.fprintf ppf "@[<v>";
      for i = 0 to r - 1 do
        if i > 0 then Format.fprintf ppf "@,";
        Format.fprintf ppf "[%a]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
             (fun ppf x -> Format.fprintf ppf "%g" x))
          (row_list (i * c) c)
      done;
      Format.fprintf ppf "@]"
  | _ -> assert false
