type t = { shape : int array; data : float array }

let check_shape shape =
  match shape with
  | [| n |] when n > 0 -> ()
  | [| r; c |] when r > 0 && c > 0 -> ()
  | _ -> invalid_arg "Tensor: shape must be [|n|] or [|r; c|] with positive dims"

let numel_of shape = Array.fold_left ( * ) 1 shape

let zeros shape =
  check_shape shape;
  { shape = Array.copy shape; data = Array.make (numel_of shape) 0.0 }

let full shape x =
  check_shape shape;
  { shape = Array.copy shape; data = Array.make (numel_of shape) x }

let init1 n f =
  check_shape [| n |];
  { shape = [| n |]; data = Array.init n f }

let init2 r c f =
  check_shape [| r; c |];
  { shape = [| r; c |]; data = Array.init (r * c) (fun k -> f (k / c) (k mod c)) }

let of_array1 a =
  if Array.length a = 0 then invalid_arg "Tensor.of_array1: empty";
  { shape = [| Array.length a |]; data = Array.copy a }

let of_array2 a =
  let r = Array.length a in
  if r = 0 then invalid_arg "Tensor.of_array2: empty";
  let c = Array.length a.(0) in
  if c = 0 then invalid_arg "Tensor.of_array2: empty row";
  Array.iter
    (fun row -> if Array.length row <> c then invalid_arg "Tensor.of_array2: ragged")
    a;
  init2 r c (fun i j -> a.(i).(j))

let scalar x = { shape = [| 1 |]; data = [| x |] }
let shape t = Array.copy t.shape
let rank t = Array.length t.shape
let numel t = Array.length t.data

let dim1 t =
  match t.shape with [| n |] -> n | _ -> invalid_arg "Tensor.dim1: not rank 1"

let dims2 t =
  match t.shape with
  | [| r; c |] -> (r, c)
  | _ -> invalid_arg "Tensor.dims2: not rank 2"

let same_shape a b = a.shape = b.shape
let get1 t i = ignore (dim1 t); t.data.(i)
let set1 t i x = ignore (dim1 t); t.data.(i) <- x

let get2 t i j =
  let _, c = dims2 t in
  t.data.((i * c) + j)

let set2 t i j x =
  let _, c = dims2 t in
  t.data.((i * c) + j) <- x

let to_array1 t = ignore (dim1 t); Array.copy t.data
let data t = t.data
let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }
let fill t x = Array.fill t.data 0 (Array.length t.data) x

let lift2 name f a b =
  if not (same_shape a b) then invalid_arg (Printf.sprintf "Tensor.%s: shape mismatch" name);
  { shape = Array.copy a.shape;
    data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let add a b = lift2 "add" ( +. ) a b
let sub a b = lift2 "sub" ( -. ) a b
let mul a b = lift2 "mul" ( *. ) a b
let scale s t = { shape = Array.copy t.shape; data = Array.map (fun x -> s *. x) t.data }
let map f t = { shape = Array.copy t.shape; data = Array.map f t.data }
let map2 f a b = lift2 "map2" f a b

let add_into dst src =
  if not (same_shape dst src) then invalid_arg "Tensor.add_into: shape mismatch";
  Array.iteri (fun k x -> dst.data.(k) <- dst.data.(k) +. x) src.data

let axpy a x y =
  if not (same_shape x y) then invalid_arg "Tensor.axpy: shape mismatch";
  Array.iteri (fun k xv -> y.data.(k) <- y.data.(k) +. (a *. xv)) x.data

let matmul_naive a b =
  let ra, ca = dims2 a and rb, cb = dims2 b in
  if ca <> rb then invalid_arg "Tensor.matmul: inner dims differ";
  let out = zeros [| ra; cb |] in
  for i = 0 to ra - 1 do
    for k = 0 to ca - 1 do
      let aik = a.data.((i * ca) + k) in
      if aik <> 0.0 then
        for j = 0 to cb - 1 do
          out.data.((i * cb) + j) <-
            out.data.((i * cb) + j) +. (aik *. b.data.((k * cb) + j))
        done
    done
  done;
  out

(* Cache-tiled GEMM.  Per output element the k-accumulation order is
   globally ascending — the same order the naive kernel uses — and skipped
   zero contributions add exact (positive) zeros, so results are
   bit-identical to [matmul_naive].  32×32 double tiles are 8 KB: an A
   tile, a B tile and an out row-block coexist in a 32 KB L1. *)
let block = 32

(* The tiled kernel restricted to output rows [lo, hi): zero-fills its
   own row range then accumulates into it, so disjoint row ranges touch
   disjoint slices of [od] and can run on different domains.  Splitting
   by rows does not change any per-element accumulation order (each
   output cell's k-sum lives entirely inside one row), so any partition
   is bit-identical to the serial [lo=0, hi=ra] call. *)
let matmul_rows od ad bd ~ca ~cb ~lo ~hi =
  Array.fill od (lo * cb) ((hi - lo) * cb) 0.0;
  let ib = ref lo in
  while !ib < hi do
    let imax = min (!ib + block) hi in
    let kb = ref 0 in
    while !kb < ca do
      let kmax = min (!kb + block) ca in
      let jb = ref 0 in
      while !jb < cb do
        let jmax = min (!jb + block) cb in
        (* dims are validated by the caller, so every index below is in
           range; unsafe accesses drop the per-element bounds checks
           that dominate the inner loop *)
        for i = !ib to imax - 1 do
          let orow = i * cb in
          for k = !kb to kmax - 1 do
            let aik = Array.unsafe_get ad ((i * ca) + k) in
            if aik <> 0.0 then begin
              let brow = k * cb in
              for j = !jb to jmax - 1 do
                Array.unsafe_set od (orow + j)
                  (Array.unsafe_get od (orow + j)
                  +. (aik *. Array.unsafe_get bd (brow + j)))
              done
            end
          done
        done;
        jb := !jb + block
      done;
      kb := !kb + block
    done;
    ib := !ib + block
  done
[@@hot]

(* Optional pool for parallel GEMM; set once at startup by the driver.
   Atomic so a concurrent reader sees either the old or the new pool,
   never a torn value. *)
let pool : Par.Pool.t option Atomic.t = Atomic.make None
let set_pool p = Atomic.set pool p
let get_pool () = Atomic.get pool

(* Below this many multiply-adds the fork/join overhead beats the win. *)
let par_threshold = 65536

let matmul_into out a b =
  let ra, ca = dims2 a and rb, cb = dims2 b in
  if ca <> rb then invalid_arg "Tensor.matmul_into: inner dims differ";
  let ro, co = dims2 out in
  if ro <> ra || co <> cb then
    invalid_arg "Tensor.matmul_into: output shape mismatch";
  if out.data == a.data || out.data == b.data then
    invalid_arg "Tensor.matmul_into: output aliases an input";
  let ad = a.data and bd = b.data and od = out.data in
  match Atomic.get pool with
  | Some p
    when Par.Pool.size p > 1 && ra > 1 && ra * ca * cb >= par_threshold ->
      let nb = min ra (Par.Pool.size p) in
      let per = (ra + nb - 1) / nb in
      Par.Pool.parallel_for p ~n:nb ~chunk:1 (fun ~worker:_ blk ->
          let lo = blk * per in
          let hi = min ra (lo + per) in
          if lo < hi then matmul_rows od ad bd ~ca ~cb ~lo ~hi)
  | _ -> matmul_rows od ad bd ~ca ~cb ~lo:0 ~hi:ra

let matmul a b =
  let ra, ca = dims2 a and rb, cb = dims2 b in
  if ca <> rb then invalid_arg "Tensor.matmul: inner dims differ";
  let out = zeros [| ra; cb |] in
  matmul_into out a b;
  out

let blit_row_into src i dst =
  let c = dim1 src in
  let r, cd = dims2 dst in
  if cd <> c then invalid_arg "Tensor.blit_row_into: width mismatch";
  if i < 0 || i >= r then invalid_arg "Tensor.blit_row_into: row out of bounds";
  let sd = src.data and dd = dst.data in
  let base = i * c in
  for j = 0 to c - 1 do
    Array.unsafe_set dd (base + j) (Array.unsafe_get sd j)
  done
[@@hot]

let stack_rows rows =
  match rows with
  | [] -> invalid_arg "Tensor.stack_rows: empty"
  | r0 :: _ ->
      let c = dim1 r0 in
      let n = List.length rows in
      let out = zeros [| n; c |] in
      List.iteri
        (fun i r ->
          if dim1 r <> c then invalid_arg "Tensor.stack_rows: ragged rows";
          blit_row_into r i out)
        rows;
      out

let row m i =
  let r, c = dims2 m in
  if i < 0 || i >= r then invalid_arg "Tensor.row: index out of bounds";
  { shape = [| c |]; data = Array.sub m.data (i * c) c }

let mv m v =
  let r, c = dims2 m in
  if dim1 v <> c then invalid_arg "Tensor.mv: dims differ";
  init1 r (fun i ->
      let acc = ref 0.0 in
      for j = 0 to c - 1 do
        acc := !acc +. (m.data.((i * c) + j) *. v.data.(j))
      done;
      !acc)

let tmv m v =
  let r, c = dims2 m in
  if dim1 v <> r then invalid_arg "Tensor.tmv: dims differ";
  let out = zeros [| c |] in
  for i = 0 to r - 1 do
    let vi = v.data.(i) in
    if vi <> 0.0 then
      for j = 0 to c - 1 do
        out.data.(j) <- out.data.(j) +. (m.data.((i * c) + j) *. vi)
      done
  done;
  out

let outer u v =
  let n = dim1 u and m = dim1 v in
  init2 n m (fun i j -> u.data.(i) *. v.data.(j))

let dot a b =
  if not (same_shape a b) then invalid_arg "Tensor.dot: shape mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun k x -> acc := !acc +. (x *. b.data.(k))) a.data;
  !acc

let transpose m =
  let r, c = dims2 m in
  init2 c r (fun i j -> m.data.((j * c) + i))

let sum t = Array.fold_left ( +. ) 0.0 t.data
let mean t = sum t /. float_of_int (numel t)
let max_value t = Array.fold_left Float.max neg_infinity t.data

let argmax1 t =
  ignore (dim1 t);
  let best = ref 0 in
  for i = 1 to Array.length t.data - 1 do
    if t.data.(i) > t.data.(!best) then best := i
  done;
  !best

let l2norm_sq t = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 t.data

let uniform ~rng ~lo ~hi shape =
  check_shape shape;
  { shape = Array.copy shape;
    data =
      Array.init (numel_of shape) (fun _ ->
          lo +. Random.State.float rng (hi -. lo)) }

let gaussian ~rng ~mean ~stddev shape =
  check_shape shape;
  let sample () =
    let u1 = Float.max 1e-12 (Random.State.float rng 1.0) in
    let u2 = Random.State.float rng 1.0 in
    mean +. (stddev *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))
  in
  { shape = Array.copy shape; data = Array.init (numel_of shape) (fun _ -> sample ()) }

let xavier ~rng ~fan_in ~fan_out shape =
  let bound = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  uniform ~rng ~lo:(-.bound) ~hi:bound shape

let concat1 ts =
  let ts = List.map (fun t -> ignore (dim1 t); t) ts in
  let n = List.fold_left (fun acc t -> acc + numel t) 0 ts in
  if n = 0 then invalid_arg "Tensor.concat1: empty";
  let out = zeros [| n |] in
  let pos = ref 0 in
  List.iter
    (fun t ->
      Array.blit t.data 0 out.data !pos (Array.length t.data);
      pos := !pos + Array.length t.data)
    ts;
  out

let approx_equal ?(eps = 1e-9) a b =
  same_shape a b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let pp ppf t =
  match t.shape with
  | [| _ |] ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           (fun ppf x -> Format.fprintf ppf "%g" x))
        (Array.to_list t.data)
  | [| r; c |] ->
      Format.fprintf ppf "@[<v>";
      for i = 0 to r - 1 do
        if i > 0 then Format.fprintf ppf "@,";
        Format.fprintf ppf "[%a]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
             (fun ppf x -> Format.fprintf ppf "%g" x))
          (Array.to_list (Array.sub t.data (i * c) c))
      done;
      Format.fprintf ppf "@]"
  | _ -> assert false
