(* Classic scalar optimizations over the IR.  All three passes are local
   (per block) or flow-insensitive, which keeps them simple and obviously
   safe; they still remove most of the lowering's temporaries. *)

let fold_binop op a b =
  (* mirror of Interp.eval_binop over literals; None when the operation
     would trap or operands are not literals of the right kind *)
  let open Ir in
  match (op, a, b) with
  | Add, VInt x, VInt y -> Some (VInt (x + y))
  | Sub, VInt x, VInt y -> Some (VInt (x - y))
  | Mul, VInt x, VInt y -> Some (VInt (x * y))
  | Div, VInt x, VInt y when y <> 0 -> Some (VInt (x / y))
  | Mod, VInt x, VInt y when y <> 0 -> Some (VInt (x mod y))
  | Lt, VInt x, VInt y -> Some (VInt (if x < y then 1 else 0))
  | Le, VInt x, VInt y -> Some (VInt (if x <= y then 1 else 0))
  | Gt, VInt x, VInt y -> Some (VInt (if x > y then 1 else 0))
  | Ge, VInt x, VInt y -> Some (VInt (if x >= y then 1 else 0))
  | Eq, VInt x, VInt y -> Some (VInt (if x = y then 1 else 0))
  | Ne, VInt x, VInt y -> Some (VInt (if x <> y then 1 else 0))
  | Fadd, VFloat x, VFloat y -> Some (VFloat (x +. y))
  | Fsub, VFloat x, VFloat y -> Some (VFloat (x -. y))
  | Fmul, VFloat x, VFloat y -> Some (VFloat (x *. y))
  | Fdiv, VFloat x, VFloat y -> Some (VFloat (x /. y))
  | Flt, VFloat x, VFloat y -> Some (VInt (if x < y then 1 else 0))
  | Fle, VFloat x, VFloat y -> Some (VInt (if x <= y then 1 else 0))
  | Fgt, VFloat x, VFloat y -> Some (VInt (if x > y then 1 else 0))
  | Fge, VFloat x, VFloat y -> Some (VInt (if x >= y then 1 else 0))
  | Feq, VFloat x, VFloat y -> Some (VInt (if x = y then 1 else 0))
  | Fne, VFloat x, VFloat y -> Some (VInt (if x <> y then 1 else 0))
  | _ -> None

(* --- constant folding -------------------------------------------------- *)

(* Flow-insensitive constant detection: a vreg is constant if it has
   exactly one definition in the whole function and that definition is
   [mov d, literal].  (Parameters count as definitions.) *)
let constants (f : Ir.func) =
  let nv = Ir.nvregs f in
  let def_count = Array.make nv 0 in
  let def_value = Array.make nv None in
  List.iter (fun p -> def_count.(p) <- def_count.(p) + 1) f.Ir.params;
  Array.iter
    (fun b ->
      List.iter
        (fun instr ->
          List.iter
            (fun d ->
              def_count.(d) <- def_count.(d) + 1;
              match instr with
              | Ir.Mov (d', ((Ir.VInt _ | Ir.VFloat _) as v)) when d' = d ->
                  def_value.(d) <- Some v
              | _ -> def_value.(d) <- None)
            (Ir.defs instr))
        b.Ir.instrs)
    f.Ir.blocks;
  Array.init nv (fun v ->
      if def_count.(v) = 1 then def_value.(v) else None)

let constant_fold (f : Ir.func) =
  let changed = ref false in
  let consts = constants f in
  let subst v =
    match v with
    | Ir.VReg r -> (
        match consts.(r) with
        | Some c ->
            changed := true;
            c
        | None -> v)
    | _ -> v
  in
  let fold_instr instr =
    let instr =
      match instr with
      | Ir.Bin (op, d, a, b) -> Ir.Bin (op, d, subst a, subst b)
      | Ir.Mov (d, a) -> Ir.Mov (d, subst a)
      | Ir.I2f (d, a) -> Ir.I2f (d, subst a)
      | Ir.F2i (d, a) -> Ir.F2i (d, subst a)
      | Ir.Load (d, g, i) -> Ir.Load (d, g, subst i)
      | Ir.Store (g, i, v) -> Ir.Store (g, subst i, subst v)
      | Ir.Store_var (g, v) -> Ir.Store_var (g, subst v)
      | Ir.Call (d, n, args) -> Ir.Call (d, n, List.map subst args)
      | Ir.Print (t, v) -> Ir.Print (t, subst v)
      | (Ir.Load_var _) as i -> i
    in
    match instr with
    | Ir.Bin (op, d, a, b) -> (
        match fold_binop op a b with
        | Some c ->
            changed := true;
            Ir.Mov (d, c)
        | None -> instr)
    | Ir.I2f (d, Ir.VInt i) ->
        changed := true;
        Ir.Mov (d, Ir.VFloat (float_of_int i))
    | Ir.F2i (d, Ir.VFloat x) ->
        changed := true;
        Ir.Mov (d, Ir.VInt (int_of_float x))
    | i -> i
  in
  Array.iter
    (fun b ->
      b.Ir.instrs <- List.map fold_instr b.Ir.instrs;
      b.Ir.term <-
        (match b.Ir.term with
        | Ir.Br (v, x, y) -> (
            match subst v with
            | Ir.VInt 0 ->
                changed := true;
                Ir.Jmp y
            | Ir.VInt _ ->
                changed := true;
                Ir.Jmp x
            | v' -> Ir.Br (v', x, y))
        | Ir.Ret (Some v) -> Ir.Ret (Some (subst v))
        | t -> t))
    f.Ir.blocks;
  !changed

(* --- copy propagation (within a block) --------------------------------- *)

let copy_propagate (f : Ir.func) =
  let changed = ref false in
  Array.iter
    (fun b ->
      (* copies.(d) = Some s while "d = s" holds *)
      let copies = Hashtbl.create 8 in
      let kill v =
        Hashtbl.remove copies v;
        (* and any copy reading v *)
        (Hashtbl.iter
           (fun d s -> if s = v then Hashtbl.remove copies d)
           (Hashtbl.copy copies)
         [@analyze.order_insensitive "commuting removals of distinct keys"])
      in
      let subst value =
        match value with
        | Ir.VReg r -> (
            match Hashtbl.find_opt copies r with
            | Some s ->
                changed := true;
                Ir.VReg s
            | None -> value)
        | _ -> value
      in
      let step instr =
        (* rewrite uses *)
        let instr =
          match instr with
          | Ir.Bin (op, d, a, c) -> Ir.Bin (op, d, subst a, subst c)
          | Ir.Mov (d, a) -> Ir.Mov (d, subst a)
          | Ir.I2f (d, a) -> Ir.I2f (d, subst a)
          | Ir.F2i (d, a) -> Ir.F2i (d, subst a)
          | Ir.Load (d, g, i) -> Ir.Load (d, g, subst i)
          | Ir.Store (g, i, v) -> Ir.Store (g, subst i, subst v)
          | Ir.Store_var (g, v) -> Ir.Store_var (g, subst v)
          | Ir.Call (d, n, args) -> Ir.Call (d, n, List.map subst args)
          | Ir.Print (t, v) -> Ir.Print (t, subst v)
          | Ir.Load_var _ -> instr
        in
        (* update the copy environment *)
        List.iter kill (Ir.defs instr);
        (match instr with
        | Ir.Mov (d, Ir.VReg s) when d <> s -> Hashtbl.replace copies d s
        | _ -> ());
        instr
      in
      b.Ir.instrs <- List.map step b.Ir.instrs;
      b.Ir.term <-
        (match b.Ir.term with
        | Ir.Br (v, x, y) -> Ir.Br (subst v, x, y)
        | Ir.Ret (Some v) -> Ir.Ret (Some (subst v))
        | t -> t))
    f.Ir.blocks;
  !changed

(* --- dead code elimination --------------------------------------------- *)

let has_side_effect = function
  | Ir.Store _ | Ir.Store_var _ | Ir.Call _ | Ir.Print _ -> true
  (* array loads can trap on a bad index: keep them *)
  | Ir.Load _ -> true
  | Ir.Bin ((Ir.Div | Ir.Mod), _, _, _) -> true (* may trap *)
  | _ -> false

let dead_code (f : Ir.func) =
  let nv = Ir.nvregs f in
  let used = Array.make nv false in
  Array.iter
    (fun b ->
      List.iter
        (fun i -> List.iter (fun v -> used.(v) <- true) (Ir.uses_instr i))
        b.Ir.instrs;
      List.iter (fun v -> used.(v) <- true) (Ir.uses_term b.Ir.term))
    f.Ir.blocks;
  let changed = ref false in
  Array.iter
    (fun b ->
      let keep instr =
        has_side_effect instr
        || (match Ir.defs instr with
           | [ d ] -> used.(d)
           | _ -> true)
      in
      let before = List.length b.Ir.instrs in
      b.Ir.instrs <- List.filter keep b.Ir.instrs;
      if List.length b.Ir.instrs <> before then changed := true)
    f.Ir.blocks;
  !changed

let run_func f =
  let budget = ref 10 in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    decr budget;
    let c1 = constant_fold f in
    let c2 = copy_propagate f in
    let c3 = dead_code f in
    continue_ := c1 || c2 || c3
  done

let run p =
  List.iter run_func p.Ir.funcs;
  p
